"""Distributed lock management (TreadMarks-style, shared with AURC).

Each lock has a static **manager** (``lock % n``).  The manager tracks
the tail of the request chain and forwards each new acquire to the
previous requester; ownership (and the protocol's coherence payload --
write notices for TreadMarks, page timestamps for AURC) travels directly
from the last owner to the next.  A node that releases a lock keeps
*cached ownership*: re-acquiring before anyone else asks costs no
messages, which matters for work-queue locks like TSP's.

Charging convention (shared by every protocol module): generators that
run as *services* on a remote processor are **raw** -- they advance time
with plain timeouts/sub-generators and the processor's service loop
charges the whole elapsed span to IPC.  Generators that run in the
acquiring processor's own context are wrapped by the caller with
``cpu.run_generator(..., Category.SYNC)`` / ``cpu.wait(..., SYNC)``.

Protocol-specific behaviour enters through three hooks on the protocol
object:

* ``lock_request_payload(node)`` -> payload sent with the acquire
  (e.g. the requester's vector clock);
* ``lock_grant_payload(node, requester, request_payload)`` -- raw
  generator run on the granting node, producing the grant payload
  (write-notice assembly time);
* ``lock_process_grant(node, payload)`` -- raw generator run on the
  requesting node while it completes the acquire (invalidations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.dsm.protocol import LockForward, LockGrant, LockRequest
from repro.hardware.node import Node
from repro.sim import Event
from repro.stats.breakdown import Category

__all__ = ["LockService", "LockStats"]


@dataclass
class LockStats:
    acquires: int = 0
    local_reacquires: int = 0
    grants_sent: int = 0
    forwards: int = 0


@dataclass
class _NodeLockState:
    """One node's view of one lock."""

    held: bool = False
    owner_here: bool = False
    waiting: Optional[Event] = None
    grant_payload: Any = None
    # A forwarded successor waiting for our release:
    # (requester, payload, request id).
    successor: Optional[Tuple[int, Any, int]] = None


@dataclass
class _ManagerLockState:
    """The manager's view: the tail of the request chain."""

    tail: Optional[int] = None


class LockService:
    """Lock protocol engine; one instance serves the whole cluster."""

    def __init__(self, protocol):
        self.protocol = protocol
        self.sim = protocol.sim
        self.params = protocol.params
        self.stats = LockStats()
        n = protocol.n
        self._node_state: list[Dict[int, _NodeLockState]] = [
            {} for _ in range(n)]
        self._manager_state: list[Dict[int, _ManagerLockState]] = [
            {} for _ in range(n)]

    # -- state accessors ------------------------------------------------------

    def _nstate(self, node_id: int, lock: int) -> _NodeLockState:
        return self._node_state[node_id].setdefault(lock, _NodeLockState())

    def _mstate(self, node_id: int, lock: int) -> _ManagerLockState:
        return self._manager_state[node_id].setdefault(
            lock, _ManagerLockState())

    def holder_count(self, lock: int) -> int:
        """Number of nodes currently holding ``lock`` (invariant: <= 1)."""
        return sum(1 for per_node in self._node_state
                   if lock in per_node and per_node[lock].held)

    def holds(self, node_id: int, lock: int) -> bool:
        state = self._node_state[node_id].get(lock)
        return bool(state and state.held)

    # -- acquire / release (run on the acquiring processor) -------------------

    def acquire(self, node: Node, lock: int):
        """Generator: block until this node holds ``lock`` (charges SYNC)."""
        pid = node.node_id
        state = self._nstate(pid, lock)
        if state.held:
            raise RuntimeError(f"node {pid} re-acquiring held lock {lock}")
        self.stats.acquires += 1
        start = self.sim.now
        rid = self.protocol.new_span_id()
        prev_stall = self.protocol.set_stall(pid, rid) if rid else 0
        if state.owner_here:
            # Cached ownership: no messages, no consistency actions needed
            # (we were the last releaser, our knowledge is current).
            state.held = True
            self.stats.local_reacquires += 1
            yield from node.cpu.hold(self.params.page_state_change_cycles,
                                     Category.SYNC)
            if rid:
                self.protocol.set_stall(pid, prev_stall)
            self._record_acquire(node, lock, start, cached=True, rid=rid)
            return
        manager = self.protocol.lock_manager(lock)
        state.waiting = Event(self.sim)
        payload = self.protocol.lock_request_payload(node)
        request = LockRequest(lock=lock, requester=pid, payload=payload,
                              req=rid)
        self.protocol.note_issue(node, manager, request)
        yield from node.cpu.run_generator(
            self.protocol.send(node, manager, request), Category.SYNC)
        yield from node.cpu.wait(state.waiting, Category.SYNC)
        grant_payload = state.grant_payload
        state.waiting = None
        state.grant_payload = None
        state.owner_here = True
        state.held = True
        yield from node.cpu.run_generator(
            self.protocol.lock_process_grant(node, grant_payload),
            Category.SYNC)
        if rid:
            self.protocol.set_stall(pid, prev_stall)
        self._record_acquire(node, lock, start, cached=False, rid=rid)

    def _record_acquire(self, node: Node, lock: int, start: float,
                        cached: bool, rid: int = 0) -> None:
        elapsed = self.sim.now - start
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc("lock_acquires", node=node.node_id, cached=cached)
            metrics.observe("lock_acquire_cycles", elapsed, cached=cached)
        audit = self.sim.audit
        if audit is not None:
            audit.lock_acquire(node.node_id, lock, cached)
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("lock"):
            tracer.emit("lock", node=node.node_id, action="acquire",
                        lock=lock, cached=cached, begin=start, dur=elapsed,
                        **({"req": rid} if rid else {}))

    def release(self, node: Node, lock: int):
        """Generator: release ``lock``, granting to a waiting successor."""
        pid = node.node_id
        state = self._nstate(pid, lock)
        if not state.held:
            raise RuntimeError(f"node {pid} releasing unheld lock {lock}")
        state.held = False
        if state.successor is not None:
            requester, req_payload, rid = state.successor
            state.successor = None
            state.owner_here = False
            yield from node.cpu.run_generator(
                self._grant(node, lock, requester, req_payload, rid),
                Category.SYNC)

    # -- message handling -----------------------------------------------------
    # handle_request / handle_forward are raw generators run as services
    # on the receiving processor; handle_grant is synchronous (it only
    # wakes the blocked acquirer, which does its own processing).

    def handle_request(self, node: Node, msg: LockRequest):
        """Raw generator (manager): grant or forward an acquire request."""
        yield self.sim.pooled_timeout(self.params.message_handler_cycles)
        mstate = self._mstate(node.node_id, msg.lock)
        previous = mstate.tail
        mstate.tail = msg.requester
        if previous is None:
            # Manager is the initial owner: grant from here.
            yield from self._grant(node, msg.lock, msg.requester,
                                   msg.payload, msg.req)
        else:
            self.stats.forwards += 1
            tracer = self.sim.tracer
            if tracer is not None and tracer.wants("lock"):
                tracer.emit("lock", node=node.node_id, action="forward",
                            lock=msg.lock, requester=msg.requester,
                            to=previous,
                            **({"req": msg.req} if msg.req else {}))
            forward = LockForward(lock=msg.lock, requester=msg.requester,
                                  payload=msg.payload, req=msg.req)
            yield from self.protocol.send(node, previous, forward)

    def handle_forward(self, node: Node, msg: LockForward):
        """Raw generator (previous owner): grant now or stash successor."""
        yield self.sim.pooled_timeout(self.params.message_handler_cycles)
        state = self._nstate(node.node_id, msg.lock)
        if state.owner_here and not state.held:
            state.owner_here = False
            yield from self._grant(node, msg.lock, msg.requester,
                                   msg.payload, msg.req)
        else:
            # Still holding, or our own grant has not arrived yet.
            if state.successor is not None:
                raise RuntimeError("lock chain gave one node two successors")
            state.successor = (msg.requester, msg.payload, msg.req)

    def handle_grant(self, node: Node, msg: LockGrant) -> None:
        """Synchronous (requester): record payload, wake the acquirer."""
        state = self._nstate(node.node_id, msg.lock)
        state.grant_payload = msg.payload
        if state.waiting is None:
            raise RuntimeError(
                f"node {node.node_id} got grant for lock {msg.lock} "
                "without waiting")
        if not state.waiting.triggered:
            state.waiting.succeed()

    # -- internals ------------------------------------------------------------

    def _grant(self, node: Node, lock: int, requester: int,
               req_payload: Any, rid: int = 0):
        """Raw generator: build the grant payload and send ownership."""
        self.stats.grants_sent += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("lock"):
            tracer.emit("lock", node=node.node_id, action="grant",
                        lock=lock, requester=requester,
                        **({"req": rid} if rid else {}))
        payload = yield from self.protocol.lock_grant_payload(
            node, requester, req_payload)
        grant = LockGrant(lock=lock, payload=payload, req=rid)
        yield from self.protocol.send(node, requester, grant)
