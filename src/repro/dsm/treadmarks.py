"""The TreadMarks lazy-release-consistency engine, all six overlap modes.

This module is the paper's section 2 (the protocol) plus section 3.2
(how the protocol uses the controller).  One :class:`TreadMarks`
instance runs the whole cluster; per-node protocol state lives in
:class:`NodeTmState`.

The overlap mode decides **where** each protocol action executes:

====================  ==================  ==================  ===========
action                Base / P            I / I+P             I+D / I+P+D
====================  ==================  ==================  ===========
twin at write fault   processor           controller          (no twins)
diff creation         proc (IPC, 7c/w)    ctrl (sw, 7c/w)     ctrl DMA
diff application      processor           controller (sw)     ctrl DMA
page request service  processor (IPC)     controller          controller
request/reply sends   processor           controller          controller
interval processing   processor           processor           processor
lock/barrier msgs     processor           processor           processor
====================  ==================  ==================  ===========

Charging conventions are described in :mod:`repro.dsm.locks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dsm.barriers import BarrierService
from repro.dsm.diffs import DiffRecord, apply_order
from repro.dsm.locks import LockService
from repro.dsm.overlap import BASE, OverlapMode
from repro.dsm.page import TmPage
from repro.dsm.prefetch import (
    PrefetchStats,
    note_prefetch,
    should_prefetch,
    should_prefetch_adaptive,
)
from repro.dsm.protocol import (
    BarrierArrive,
    BarrierRelease,
    DiffReply,
    DiffRequest,
    DsmProtocol,
    LockForward,
    LockGrant,
    LockRequest,
    Message,
    PageReply,
    PageRequest,
)
from repro.dsm.shmem import SharedSegment
from repro.dsm.timestamps import IntervalLog, IntervalRecord, VectorClock
from repro.hardware.controller import (
    PRIORITY_PREFETCH,
    PRIORITY_REMOTE,
    PRIORITY_URGENT,
)
from repro.hardware.node import Cluster, Node
from repro.hardware.params import MachineParams
from repro.sim import AllOf, Event, Simulator
from repro.stats.breakdown import Category
from repro.stats.metrics import DIFF_WORDS_BUCKETS

__all__ = ["TreadMarks", "TmStats", "NodeTmState"]


@dataclass
class TmStats:
    """Cluster-wide protocol event counters."""

    read_faults: int = 0
    write_faults: int = 0
    cold_fetches: int = 0
    diff_requests: int = 0
    diffs_created: int = 0
    diffs_applied: int = 0
    diff_words_created: int = 0
    diff_words_applied: int = 0
    twins_created: int = 0
    write_notices_sent: int = 0
    hybrid_diffs_sent: int = 0
    hybrid_diffs_applied: int = 0
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)


class _DiffGather:
    """Collects the replies of one multi-writer diff fetch.

    Data is committed to the page only when the last reply arrives, in
    happens-before order -- arrival order across writers is arbitrary.
    """

    __slots__ = ("tp", "remaining", "diffs")

    def __init__(self, tp: TmPage, n_replies: int):
        self.tp = tp
        self.remaining = n_replies
        self.diffs: List[DiffRecord] = []

    def add(self, diffs: List[DiffRecord]) -> bool:
        """Record one reply; returns True when the gather is complete."""
        self.diffs.extend(diffs)
        self.remaining -= 1
        if self.remaining < 0:
            raise RuntimeError("diff gather got more replies than requests")
        return self.remaining == 0


class NodeTmState:
    """One node's TreadMarks protocol state."""

    def __init__(self, pid: int, n: int):
        self.pid = pid
        self.vc = VectorClock(n)
        self.last_barrier_vc = VectorClock(n)
        self.log = IntervalLog(n)
        self.pages: Dict[int, TmPage] = {}
        # Coherence-audit adapter (repro.dsm.audit.NodeAudit) handed to
        # every page this node creates; None when unaudited.
        self.audit = None

    def page(self, page: int, words: int) -> TmPage:
        state = self.pages.get(page)
        if state is None:
            state = TmPage(page, words, audit=self.audit)
            self.pages[page] = state
        return state


class TreadMarks(DsmProtocol):
    """TreadMarks on a cluster, in a given overlap mode."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 params: MachineParams, segment: SharedSegment,
                 mode: OverlapMode = BASE,
                 prefetch_low_priority: bool = True,
                 prefetch_all_invalid: bool = False,
                 prefetch_adaptive: bool = False,
                 hybrid_updates: bool = False):
        """``prefetch_low_priority`` and ``prefetch_all_invalid`` are
        ablation knobs: the paper's design deprioritizes prefetch
        commands in the controller queue (section 3.1, footnote 2) and
        only prefetches cached-and-referenced pages; the ablation
        benches flip these to show why.  ``prefetch_adaptive`` enables
        the future-work refinement: stop prefetching a page after
        repeated useless prefetches.  ``hybrid_updates`` enables the
        Lazy Hybrid variant of Dwarkadas et al. (the paper's related
        work [11]): lock grants piggyback the grantor's own diffs for
        pages the requester is known to cache, trading larger grant
        messages for fewer diff-request round trips."""
        super().__init__(sim, cluster, params)
        if mode.uses_controller and cluster[0].controller is None:
            raise ValueError(
                f"mode {mode.name} needs a cluster built with controllers")
        self.mode = mode
        self.prefetch_low_priority = prefetch_low_priority
        self.prefetch_all_invalid = prefetch_all_invalid
        self.prefetch_adaptive = prefetch_adaptive
        self.hybrid_updates = hybrid_updates
        self.segment = segment
        self.stats = TmStats()
        self.states = [NodeTmState(i, self.n) for i in range(self.n)]
        self.locks = LockService(self)
        self.barriers = BarrierService(self)
        # Diff-op time executed on each node's controller (the processor
        # side is tracked by TimeBreakdown.diff_cycles).
        self.controller_diff_cycles = [0.0] * self.n
        # Coherence auditor (set by attach_audit); None when unaudited.
        self.audit = None

    def attach_audit(self, auditor) -> None:
        """Attach a :class:`~repro.dsm.audit.CoherenceAuditor`.

        Hands every node state a per-node adapter, retrofits pages that
        already exist, and records the protocol family.  Purely
        observational: no simulator state is touched.
        """
        auditor.family = "treadmarks"
        self.audit = auditor
        for st in self.states:
            st.audit = auditor.node_view(st.pid)
            for tp in st.pages.values():
                tp.audit = st.audit

    @property
    def name(self) -> str:
        return f"TreadMarks/{self.mode.name}"

    @property
    def _prefetch_priority(self) -> int:
        return (PRIORITY_PREFETCH if self.prefetch_low_priority
                else PRIORITY_URGENT)

    # ------------------------------------------------------------------
    # message dispatch (NIC handler context: never blocks)
    # ------------------------------------------------------------------

    def handle_message(self, node: Node, msg: Message) -> None:
        if isinstance(msg, LockRequest):
            node.cpu.post_service(
                "lock-req", lambda: self.locks.handle_request(node, msg),
                req=msg.req)
        elif isinstance(msg, LockForward):
            node.cpu.post_service(
                "lock-fwd", lambda: self.locks.handle_forward(node, msg),
                req=msg.req)
        elif isinstance(msg, LockGrant):
            self.locks.handle_grant(node, msg)
        elif isinstance(msg, BarrierArrive):
            node.cpu.post_service(
                "bar-arrive", lambda: self.barriers.handle_arrive(node, msg),
                req=msg.req)
        elif isinstance(msg, BarrierRelease):
            self.barriers.handle_release(node, msg)
        elif isinstance(msg, PageRequest):
            self._data_service(node, "page-req",
                               lambda: self._serve_page_request(node, msg),
                               req=msg.token)
        elif isinstance(msg, DiffRequest):
            self._data_service(node, "diff-req",
                               lambda: self._serve_diff_request(node, msg),
                               req=msg.token)
        elif isinstance(msg, PageReply):
            self._handle_page_reply(node, msg)
        elif isinstance(msg, DiffReply):
            self._handle_diff_reply(node, msg)
        else:
            raise TypeError(f"unhandled message {msg!r}")

    def _data_service(self, node: Node, name: str, work, req: int = 0) -> None:
        """Run a data-plane service on the controller (I modes) or the
        computation processor (Base/P).

        Remote service runs at middle priority so commands the local
        processor is stalled on (twin creation, demand sends, reply
        installs) overtake it in the queue (paper footnote 2).
        """
        if self.mode.offload:
            node.controller.submit(name, work, priority=PRIORITY_REMOTE,
                                   req=req)
        else:
            node.cpu.post_service(name, work, req=req)

    # ------------------------------------------------------------------
    # shared-memory operations (processor context)
    # ------------------------------------------------------------------

    def proc_compute(self, pid: int, cycles: float):
        yield from self.cluster[pid].cpu.hold(cycles, Category.BUSY)

    def proc_read(self, pid: int, addr: int, nwords: int):
        node = self.cluster[pid]
        st = self.states[pid]
        chunks = []
        for page, offset, count in self.split_by_page(addr, nwords):
            tp = st.page(page, self.params.words_per_page)
            if not tp.is_valid():
                yield from self._fault(node, st, tp, write=False)
            self._note_use(node, tp)
            busy, others = node.access_cost_cycles(
                page, page * self.params.words_per_page + offset, count,
                write=False)
            yield from node.cpu.hold_split(busy, others)
            chunks.append(tp.frame[offset:offset + count].copy())
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    def proc_write(self, pid: int, addr: int, values):
        node = self.cluster[pid]
        st = self.states[pid]
        values = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        cursor = 0
        for page, offset, count in self.split_by_page(addr, len(values)):
            tp = st.page(page, self.params.words_per_page)
            if not tp.is_valid():
                yield from self._fault(node, st, tp, write=True)
            if not tp.write_active:
                yield from self._write_fault(node, st, tp)
            self._note_use(node, tp)
            tp.record_write(offset, count, values[cursor:cursor + count])
            busy, others = node.access_cost_cycles(
                page, page * self.params.words_per_page + offset, count,
                write=True)
            yield from node.cpu.hold_split(busy, others)
            cursor += count

    def proc_acquire(self, pid: int, lock: int):
        yield from self.locks.acquire(self.cluster[pid], lock)

    def proc_release(self, pid: int, lock: int):
        node = self.cluster[pid]
        start = self.sim.now
        yield from node.cpu.run_generator(
            self._end_interval(node), Category.SYNC)
        yield from self.locks.release(node, lock)
        self.note_sync_span(node, "lock", "release", start, lock=lock)

    def proc_barrier(self, pid: int, barrier: int):
        node = self.cluster[pid]
        start = self.sim.now
        yield from node.cpu.run_generator(
            self._end_interval(node), Category.SYNC)
        self.note_sync_span(node, "barrier", "interval", start,
                            barrier=barrier)
        yield from self.barriers.wait(node, barrier)

    # ------------------------------------------------------------------
    # intervals
    # ------------------------------------------------------------------

    def _end_interval(self, node: Node):
        """Raw generator: close the current interval (release point)."""
        st = self.states[node.node_id]
        pid = node.node_id
        new_id = st.vc[pid] + 1
        written = [page for page, tp in st.pages.items() if tp.write_active]
        st.vc.advance(pid)
        vc_tuple = st.vc.as_tuple()
        for page in written:
            st.pages[page].close_interval(new_id, pid, vc_tuple)
        if written:
            record = IntervalRecord(writer=pid, interval_id=new_id,
                                    pages=tuple(sorted(written)),
                                    vc=vc_tuple)
            st.log.add(record)
            if self.audit is not None:
                self.audit.vc_advance(pid, pid, new_id,
                                      record.pages, vc_tuple)
            yield self.sim.pooled_timeout(
                len(written)
                * self.params.list_processing_cycles_per_element)

    # ------------------------------------------------------------------
    # lock / barrier protocol hooks (see locks.py / barriers.py)
    # ------------------------------------------------------------------

    def lock_request_payload(self, node: Node):
        return self.states[node.node_id].vc.as_tuple()

    def lock_grant_payload(self, node: Node, requester: int, req_payload):
        """Raw generator: assemble write notices the requester lacks."""
        st = self.states[node.node_id]
        req_vc = VectorClock(values=req_payload)
        records = st.log.records_behind(req_vc)
        notices = sum(r.notice_count for r in records)
        self.stats.write_notices_sent += notices
        yield self.sim.pooled_timeout(
            (notices + 1) * self.params.list_processing_cycles_per_element)
        if not self.hybrid_updates:
            return (st.vc.as_tuple(), records)
        piggybacked = yield from self._collect_hybrid_diffs(
            node, requester, req_vc)
        return (st.vc.as_tuple(), records, piggybacked)

    def _collect_hybrid_diffs(self, node: Node, requester: int,
                              req_vc: VectorClock):
        """Raw generator (Lazy Hybrid): materialize the grantor's own
        recent diffs for pages the requester is known to cache."""
        pid = node.node_id
        st = self.states[pid]
        piggybacked: List[DiffRecord] = []
        pages = set()
        for record in st.log.records_after(pid, req_vc[pid]):
            pages.update(record.pages)
        for page in sorted(pages):
            tp = st.pages.get(page)
            if tp is None or requester not in tp.copyset:
                continue
            since = tp.copyset[requester]
            fresh_diffs = tp.diffs_after(since)
            piggybacked.extend(fresh_diffs)
            if fresh_diffs:
                tp.copyset[requester] = max(d.to_id for d in fresh_diffs)
        if piggybacked:
            fresh = None
            for diff in piggybacked:
                tp = st.pages[diff.page]
                fresh = tp.materialize([diff]) or fresh
            dirty = sum(d.dirty_words for d in piggybacked)
            self.stats.hybrid_diffs_sent += len(piggybacked)
            # Creation cost for anything not yet materialized.
            if fresh:
                yield from self._charge_diff_creation(node, dirty)
        return piggybacked

    def lock_process_grant(self, node: Node, payload):
        """Raw generator: merge notices, invalidate, maybe prefetch.

        Under the Lazy Hybrid variant the payload carries piggybacked
        diffs, applied right here (in contiguous per-writer interval
        order, never past the applied watermark) so the pages are warm
        before the critical section touches them."""
        vc_tuple, records = payload[0], payload[1]
        yield from self._merge_coherence_info(node, (vc_tuple, records))
        if len(payload) > 2 and payload[2]:
            yield from self._apply_hybrid_diffs(node, payload[2])

    def _apply_hybrid_diffs(self, node: Node, diffs):
        """Raw generator: apply grant-piggybacked diffs where possible."""
        st = self.states[node.node_id]
        start = self.sim.now
        applied_words = 0
        for diff in sorted(diffs, key=lambda d: d.to_id):
            tp = st.pages.get(diff.page)
            if tp is None or not tp.has_frame:
                continue  # no local copy: a demand fault will fetch
            applied = tp.applied.get(diff.writer, 0)
            if diff.to_id <= applied or diff.from_id > applied:
                continue  # stale, or a gap in the interval chain
            if any(w != diff.writer for w in tp.pending_writers()):
                # Another writer's hb-earlier intervals are still
                # unapplied; applying this diff now and theirs later
                # would roll shared words backwards.  Let the demand
                # fault gather and order everything.
                continue
            yield self.sim.pooled_timeout(
                diff.dirty_words * self.params.diff_cycles_per_word)
            yield from node.memory.access_scattered(diff.dirty_words)
            tp.apply_incoming(diff)
            self._invalidate_cached(node, tp)
            self.stats.hybrid_diffs_applied += 1
            self.stats.diffs_applied += 1
            self.stats.diff_words_applied += diff.dirty_words
            applied_words += diff.dirty_words
        if applied_words:
            self._note_diff(node, "apply", applied_words, start,
                            where="hybrid")

    def barrier_arrive_payload(self, node: Node):
        st = self.states[node.node_id]
        records = st.log.records_behind(st.last_barrier_vc)
        return (st.vc.as_tuple(), records)

    def barrier_merge(self, node: Node, payloads):
        """Raw generator (manager): union all arrival records."""
        st = self.states[node.node_id]
        total_notices = 0
        merged_vc = st.vc.copy()
        for vc_tuple, records in payloads:
            merged_vc.merge(VectorClock(values=vc_tuple))
            for record in records:
                st.log.add(record)
                total_notices += record.notice_count
        yield self.sim.pooled_timeout(
            (total_notices + 1)
            * self.params.list_processing_cycles_per_element)
        return (merged_vc.as_tuple(),
                st.log.records_behind(st.last_barrier_vc))

    def barrier_release_payload(self, node: Node, dst: int, merged):
        return merged

    def barrier_process_release(self, node: Node, payload):
        """Raw generator: merge, invalidate, advance the barrier VC."""
        yield from self._merge_coherence_info(node, payload)
        st = self.states[node.node_id]
        st.last_barrier_vc = st.vc.copy()

    def _merge_coherence_info(self, node: Node, payload):
        """Raw generator: common grant/release processing."""
        st = self.states[node.node_id]
        vc_tuple, records = payload
        invalidated: List[TmPage] = []
        notices = 0
        for record in records:
            if record.writer == node.node_id:
                continue
            st.log.add(record)
            notices += record.notice_count
            for page in record.pages:
                tp = st.page(page, self.params.words_per_page)
                newly_invalid = tp.record_notice(record.writer,
                                                 record.interval_id)
                if tp.prefetch_ready:
                    # A prefetched page re-invalidated before any use.
                    tp.prefetch_ready = False
                    tp.pf_useless_streak += 1
                    self.stats.prefetch.useless += 1
                    note_prefetch(self.sim, node.node_id, "useless", page)
                if newly_invalid:
                    invalidated.append(tp)
        st.vc.merge(VectorClock(values=vc_tuple))
        if self.audit is not None:
            # Covering-acquire point: all notices above are recorded,
            # so the hb-notice-coverage check must pass for every
            # interval the merged clock now covers.
            self.audit.sync_merge(node.node_id, st.vc.as_tuple())
        cost = (notices * self.params.list_processing_cycles_per_element
                + len(invalidated) * self.params.page_state_change_cycles)
        if cost:
            yield self.sim.pooled_timeout(cost)
        for tp in invalidated:
            self._invalidate_cached(node, tp)
        if notices:
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.inc("write_notices", notices, node=node.node_id)
                metrics.inc("notice_invalidations", len(invalidated),
                            node=node.node_id)
            tracer = self.sim.tracer
            if tracer is not None and tracer.wants("notice"):
                tracer.emit("notice", node=node.node_id, action="process",
                            notices=notices, invalidated=len(invalidated))
        if self.mode.prefetch:
            yield from self._issue_prefetches(node, st)

    def _invalidate_cached(self, node: Node, tp: TmPage) -> None:
        base = tp.page * self.params.words_per_page
        node.cache.invalidate_range(base, self.params.words_per_page)
        node.tlb.invalidate(tp.page)

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------

    def _note_use(self, node: Node, tp: TmPage) -> None:
        tp.referenced = True
        tp.pf_useless_streak = 0
        if tp.prefetch_ready:
            tp.prefetch_ready = False
            self.stats.prefetch.useful += 1
            note_prefetch(self.sim, node.node_id, "hit", tp.page)
            if tp.prefetch_issued_at is not None:
                self.stats.prefetch.lead_cycles_total += (
                    self.sim.now - tp.prefetch_issued_at)

    def _fault(self, node: Node, st: NodeTmState, tp: TmPage, write: bool):
        """Processor-context generator: make ``tp`` valid (charges DATA)."""
        start = self.sim.now
        sid = self.new_span_id()
        prev_stall = self.set_stall(node.node_id, sid) if sid else 0
        if write:
            self.stats.write_faults += 1
        else:
            self.stats.read_faults += 1
        if tp.audit is not None:
            tp.audit.fault(tp.page, "write" if write else "read")
        if tp.prefetch_event is not None:
            # A prefetch is in flight: wait for it instead of re-requesting.
            self.stats.prefetch.late += 1
            note_prefetch(self.sim, node.node_id, "late", tp.page)
            yield from node.cpu.wait(tp.prefetch_event, Category.DATA)
        while True:
            if not tp.has_frame:
                yield from self._cold_fetch(node, st, tp)
            writers = tp.pending_writers()
            if not writers:
                break
            yield from self._fetch_diffs(node, st, tp, writers)
        if sid:
            self.set_stall(node.node_id, prev_stall)
        kind = "write" if write else "read"
        elapsed = self.sim.now - start
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc("faults", node=node.node_id, kind=kind)
            metrics.observe("fault_stall_cycles", elapsed, kind=kind)
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("fault"):
            tracer.emit("fault", node=node.node_id, action=kind,
                        page=tp.page, begin=start, dur=elapsed,
                        **({"req": sid} if sid else {}))

    def _cold_fetch(self, node: Node, st: NodeTmState, tp: TmPage):
        """Processor-context generator: install a first page copy."""
        self.stats.cold_fetches += 1
        manager = self.page_manager(tp.page)
        if manager == node.node_id:
            # First touch at the manager: map a zero page locally.
            tp.ensure_frame()
            yield from node.cpu.hold(self.params.page_state_change_cycles,
                                     Category.DATA)
            return
        token = self.new_token()
        done = self.register_pending(token, tp)
        request = PageRequest(requester=node.node_id, page=tp.page,
                              token=token)
        yield from self._request_send(node, manager, request, Category.DATA)
        reply: PageReply = yield from node.cpu.wait(done, Category.DATA)
        if not self.mode.offload:
            # The faulting processor itself copies the page into place.
            yield from node.cpu.run_generator(
                node.memory.access(self.params.words_per_page),
                Category.DATA)
            self._install_page(node, tp, reply)

    def _install_page(self, node: Node, tp: TmPage, reply: PageReply) -> None:
        tp.frame = reply.frame.copy()  # type: ignore[attr-defined]
        tp.adopt_snapshot(reply.snapshot)
        self._invalidate_cached(node, tp)

    def _fetch_diffs(self, node: Node, st: NodeTmState, tp: TmPage,
                     writers: List[int]):
        """Processor-context generator: collect and apply missing diffs."""
        events = []
        gather = _DiffGather(tp, len(writers))
        for writer in writers:
            token = self.new_token()
            done = self.register_pending(token, gather)
            request = DiffRequest(requester=node.node_id, page=tp.page,
                                  after_id=tp.applied.get(writer, 0),
                                  through_id=tp.notified.get(writer, 0),
                                  token=token)
            self.stats.diff_requests += 1
            yield from self._request_send(node, writer, request,
                                          Category.DATA)
            events.append(done)
        yield from node.cpu.wait(AllOf(self.sim, events), Category.DATA)
        if not self.mode.offload:
            yield from node.cpu.run_generator(
                self._apply_diffs_processor(node, tp, gather.diffs),
                Category.DATA)

    def _apply_diffs_processor(self, node: Node, tp: TmPage,
                               diffs: List[DiffRecord]):
        """Raw generator: software diff application on the processor."""
        start = self.sim.now
        applied_words = 0
        for diff in apply_order(diffs):
            yield self.sim.pooled_timeout(
                diff.dirty_words * self.params.diff_cycles_per_word)
            yield from node.memory.access_scattered(diff.dirty_words)
            tp.apply_incoming(diff)
            self.stats.diffs_applied += 1
            self.stats.diff_words_applied += diff.dirty_words
            applied_words += diff.dirty_words
        self._invalidate_cached(node, tp)
        node.cpu.breakdown.charge_diff(self.sim.now - start)
        if diffs:
            self._note_diff(node, "apply", applied_words, start,
                            where="processor", page=tp.page)

    def _write_fault(self, node: Node, st: NodeTmState, tp: TmPage):
        """Processor-context generator: arm write collection (twin)."""
        arm_start = self.sim.now
        sid = self.new_span_id()
        prev_stall = self.set_stall(node.node_id, sid) if sid else 0
        if self.mode.uses_twins:
            self.stats.twins_created += 1
            if self.mode.offload:
                done = node.controller.submit(
                    "twin", lambda: self._controller_twin(node), req=sid)
                yield from node.cpu.wait(done, Category.DATA)
            else:
                start = self.sim.now
                yield from node.cpu.hold(
                    self.params.words_per_page
                    * self.params.twin_cycles_per_word,
                    Category.DATA, interruptible=False)
                yield from node.cpu.run_generator(
                    node.memory.access(2 * self.params.words_per_page),
                    Category.DATA)
                node.cpu.breakdown.charge_diff(self.sim.now - start)
        else:
            # Hardware bit vectors: just flip the page writable.
            yield from node.cpu.hold(self.params.page_state_change_cycles,
                                     Category.DATA)
        if sid:
            self.set_stall(node.node_id, prev_stall)
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("fault"):
            tracer.emit("fault", node=node.node_id, action="write-arm",
                        page=tp.page, begin=arm_start,
                        dur=self.sim.now - arm_start,
                        **({"req": sid} if sid else {}))
        tp.arm_write_collection()

    def _controller_twin(self, node: Node):
        start = self.sim.now
        yield from node.controller.twin_create()
        self.controller_diff_cycles[node.node_id] += self.sim.now - start

    # ------------------------------------------------------------------
    # request sending (processor -> local controller -> network in I modes)
    # ------------------------------------------------------------------

    def _request_send(self, node: Node, dst: int, msg: Message,
                      category: Category, priority: int = PRIORITY_URGENT):
        """Processor-context generator: emit a request message."""
        self.note_issue(node, dst, msg)
        if self.mode.offload:
            yield from node.cpu.hold(
                self.params.controller_command_issue_cycles, category)
            node.controller.submit(
                "send", lambda: self.send(node, dst, msg), priority=priority,
                req=self.request_id_of(msg))
        else:
            yield from node.cpu.run_generator(
                self.send(node, dst, msg), category)

    # ------------------------------------------------------------------
    # data-plane services (run on controller in I modes, processor in Base/P)
    # ------------------------------------------------------------------

    def _serve_page_request(self, node: Node, msg: PageRequest):
        """Raw generator: the page manager answers a cold fetch."""
        st = self.states[node.node_id]
        tp = st.page(msg.page, self.params.words_per_page)
        tp.ensure_frame()
        tp.copyset[msg.requester] = tp.last_closed_id
        yield self.sim.pooled_timeout(self.params.message_handler_cycles)
        yield from node.memory.access(self.params.words_per_page)
        reply = PageReply(page=msg.page, token=msg.token,
                          snapshot=tp.applied_snapshot(),
                          frame=tp.frame.copy())
        yield from self.send(node, msg.requester, reply,
                             traffic_class="page")

    def _serve_diff_request(self, node: Node, msg: DiffRequest):
        """Raw generator: a writer answers a diff request.

        Interval processing always interrupts the computation processor
        (paper section 3.2); diff creation runs wherever the mode says.
        """
        pid = node.node_id
        st = self.states[pid]
        tp = st.page(msg.page, self.params.words_per_page)
        yield self.sim.pooled_timeout(self.params.message_handler_cycles)
        interval_done = None
        if self.mode.offload:
            # Delegate interval processing to the computation processor;
            # it runs concurrently with the controller generating the
            # diffs (section 3.2: "remote diff requests must interrupt
            # the processor so that it can perform interval processing,
            # but the diffs themselves are generated by the controller").
            pending = len(tp.diff_store) + 1
            interval_done = node.cpu.post_service(
                "interval-proc",
                lambda: self._interval_processing(pending),
                req=msg.token)
        else:
            yield from self._interval_processing(len(tp.diff_store) + 1)
        diffs = [d for d in tp.diffs_after(msg.after_id)
                 if d.to_id <= msg.through_id]
        if diffs:
            tp.copyset[msg.requester] = max(
                tp.copyset.get(msg.requester, 0),
                max(d.to_id for d in diffs))
        fresh = tp.materialize(diffs)
        if fresh:
            dirty = sum(d.dirty_words for d in fresh)
            self.stats.diffs_created += len(fresh)
            self.stats.diff_words_created += dirty
            yield from self._charge_diff_creation(node, dirty)
        if interval_done is not None:
            yield interval_done
        reply = DiffReply(page=msg.page, token=msg.token, diffs=diffs,
                          prefetch=msg.prefetch)
        yield from self.send(node, msg.requester, reply,
                             traffic_class="diff")

    def _interval_processing(self, n_elements: int):
        """Raw generator: write-notice/interval list traversal."""
        yield self.sim.pooled_timeout(
            (n_elements + 1) * self.params.list_processing_cycles_per_element)

    def _charge_diff_creation(self, node: Node, dirty_words: int):
        """Raw generator: the time cost of one diff materialization pass.

        ``dirty_words`` is the total across the diffs being materialized;
        they share a single twin comparison (software) or bit-vector scan
        (DMA), like TreadMarks' consolidated creation.
        """
        start = self.sim.now
        if self.mode.hardware_diffs:
            yield from node.controller.dma_diff_create(dirty_words)
            self.controller_diff_cycles[node.node_id] += self.sim.now - start
            where = "dma"
        elif self.mode.offload:
            yield from node.controller.software_diff_create()
            self.controller_diff_cycles[node.node_id] += self.sim.now - start
            where = "controller"
        else:
            # On the computation processor: full-page scan against the twin.
            yield self.sim.pooled_timeout(self.params.words_per_page
                                   * self.params.diff_cycles_per_word)
            yield from node.memory.access(self.params.words_per_page)
            node.cpu.breakdown.charge_diff(self.sim.now - start)
            where = "processor"
        self._note_diff(node, "create", dirty_words, start, where=where)

    def _note_diff(self, node: Node, action: str, dirty_words: int,
                   start: float, **extra) -> None:
        """Guarded metrics/trace emission for one diff create/apply span."""
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc(f"diff_{action}s", node=node.node_id)
            metrics.observe("diff_size_words", dirty_words,
                            buckets=DIFF_WORDS_BUCKETS, action=action)
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("diff"):
            tracer.emit("diff", node=node.node_id, action=action,
                        words=dirty_words, begin=start,
                        dur=self.sim.now - start, **extra)

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------

    def _handle_page_reply(self, node: Node, msg: PageReply) -> None:
        if self.mode.offload:
            tp = self.pending_context(msg.token)

            def install():
                yield from node.controller.page_copy()
                self._install_page(node, tp, msg)
                self.complete_pending(msg.token, msg)

            node.controller.submit("page-install", install, req=msg.token)
        else:
            self.complete_pending(msg.token, msg)

    def _handle_diff_reply(self, node: Node, msg: DiffReply) -> None:
        gather = self.pending_context(msg.token)
        if gather is None:
            return
        if self.mode.offload:
            priority = (self._prefetch_priority if msg.prefetch
                        else PRIORITY_URGENT)
            node.controller.submit(
                "diff-apply",
                lambda: self._controller_apply(node, gather, msg),
                priority=priority, req=msg.token)
        elif msg.prefetch:
            node.cpu.post_service(
                "pf-apply", lambda: self._processor_prefetch_apply(
                    node, gather, msg), category=Category.DATA,
                req=msg.token)
        else:
            # Base/P demand fetch: the faulting processor applies all the
            # gathered diffs itself once every reply is in.
            gather.add(msg.diffs)
            self.complete_pending(msg.token, msg.diffs)

    def _controller_apply(self, node: Node, gather: "_DiffGather",
                          msg: DiffReply):
        """Raw generator (controller): apply arriving diffs to memory.

        Timing is charged per arriving reply (the DMA engine runs as
        data lands); the *data* is committed in happens-before order once
        the last reply of the gather is in, mirroring TreadMarks applying
        a fault's diffs in vector-timestamp order.
        """
        start = self.sim.now
        applied_words = 0
        for diff in msg.diffs:
            if self.mode.hardware_diffs:
                yield from node.controller.dma_diff_apply(diff.dirty_words)
            else:
                yield from node.controller.software_diff_apply(
                    diff.dirty_words)
            self.stats.diffs_applied += 1
            self.stats.diff_words_applied += diff.dirty_words
            applied_words += diff.dirty_words
        if gather.add(msg.diffs):
            for diff in apply_order(gather.diffs):
                gather.tp.apply_incoming(diff)
            self._invalidate_cached(node, gather.tp)
        self.controller_diff_cycles[node.node_id] += self.sim.now - start
        if msg.diffs:
            self._note_diff(node, "apply", applied_words, start,
                            where="controller", page=msg.page)
        self.complete_pending(msg.token)

    def _processor_prefetch_apply(self, node: Node, gather: "_DiffGather",
                                  msg: DiffReply):
        """Raw generator (P mode): the processor applies a prefetched diff."""
        start = self.sim.now
        applied_words = 0
        for diff in msg.diffs:
            yield self.sim.pooled_timeout(
                diff.dirty_words * self.params.diff_cycles_per_word)
            yield from node.memory.access_scattered(diff.dirty_words)
            self.stats.diffs_applied += 1
            self.stats.diff_words_applied += diff.dirty_words
            applied_words += diff.dirty_words
        if msg.diffs:
            self._note_diff(node, "apply", applied_words, start,
                            where="processor", page=msg.page)
        if gather.add(msg.diffs):
            for diff in apply_order(gather.diffs):
                gather.tp.apply_incoming(diff)
            self._invalidate_cached(node, gather.tp)
        node.cpu.breakdown.charge_diff(self.sim.now - start)
        self.complete_pending(msg.token)

    # ------------------------------------------------------------------
    # prefetching
    # ------------------------------------------------------------------

    def _issue_prefetches(self, node: Node, st: NodeTmState):
        """Raw generator: request diffs for cached-and-invalidated pages."""
        if self.prefetch_all_invalid:
            candidates = [tp for tp in st.pages.values()
                          if (tp.has_frame and not tp.is_valid()
                              and tp.prefetch_event is None)]
        elif self.prefetch_adaptive:
            candidates = [tp for tp in st.pages.values()
                          if should_prefetch_adaptive(tp)]
        else:
            candidates = [tp for tp in st.pages.values()
                          if should_prefetch(tp)]
        for tp in candidates:
            writers = tp.pending_writers()
            if not writers:
                continue
            events = []
            tokens = []
            gather = _DiffGather(tp, len(writers))
            for writer in writers:
                token = self.new_token()
                tokens.append(token)
                done = self.register_pending(token, gather)
                request = DiffRequest(requester=node.node_id, page=tp.page,
                                      after_id=tp.applied.get(writer, 0),
                                      through_id=tp.notified.get(writer, 0),
                                      token=token, prefetch=True)
                self.stats.prefetch.diff_requests += 1
                self.note_issue(node, writer, request)
                if self.mode.offload:
                    yield self.sim.pooled_timeout(
                        self.params.controller_command_issue_cycles)
                    node.controller.submit(
                        "pf-send", lambda w=writer, r=request:
                        self.send(node, w, r),
                        priority=self._prefetch_priority, req=token)
                else:
                    yield from self.send(node, writer, request)
                events.append(done)
            self.stats.prefetch.issued += 1
            note_prefetch(self.sim, node.node_id, "issue", tp.page,
                          writers=len(writers), tokens=tokens)
            tp.prefetch_event = AllOf(self.sim, events)
            tp.prefetch_issued_at = self.sim.now
            tp.referenced = False
            self.sim.process(self._finalize_prefetch(tp),
                             name=f"pf-watch-p{tp.page}")

    def _finalize_prefetch(self, tp: TmPage):
        event = tp.prefetch_event
        yield event
        tp.prefetch_event = None
        if tp.is_valid():
            tp.prefetch_ready = True
        # If still invalid (a new notice arrived mid-flight), the next
        # fault will fetch the remainder; the prefetch was partial.

    # ------------------------------------------------------------------
    # end-of-run accounting
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Settle prefetch accounting at the end of a run: completed but
        never-used prefetches, and still-in-flight ones, were useless."""
        for st in self.states:
            for tp in st.pages.values():
                if tp.prefetch_ready or tp.prefetch_event is not None:
                    tp.prefetch_ready = False
                    tp.prefetch_event = None
                    tp.pf_useless_streak += 1
                    self.stats.prefetch.useless += 1
                    note_prefetch(self.sim, st.pid, "useless", tp.page)

    def total_diff_cycles(self) -> float:
        """Twin + diff time across processors and controllers."""
        processor = sum(node.cpu.breakdown.diff_cycles
                        for node in self.cluster.nodes)
        return processor + sum(self.controller_diff_cycles)

    def coherence_state_report(self) -> Dict[str, int]:
        """Bytes of live coherence metadata vs the pre-compaction dict
        representation (for the scale sweeps' memory accounting)."""
        compact = 0
        dict_equiv = 0
        pages = 0
        for st in self.states:
            pages += len(st.pages)
            for tp in st.pages.values():
                compact += tp.state_nbytes()
                dict_equiv += tp.state_dict_equiv_nbytes()
        return {"coherence_state_bytes": compact,
                "coherence_state_dict_bytes": dict_equiv,
                "coherence_pages": pages}
