"""The application-facing shared-memory interface.

Applications are generators over a :class:`DsmApi`: every shared read,
shared write, synchronization operation, and block of private
computation is a ``yield from`` on one of its methods, so the protocol
and hardware models decide how long everything takes (and, through lock
contention and timing, what the application does next -- the
execution-driven property).

:class:`SharedSegment` is the global allocator: a flat, word-addressed,
page-aligned address space shared by all processes.  :class:`SharedArray`
is a convenience wrapper for array-style access.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.hardware.params import MachineParams

__all__ = ["SharedSegment", "DsmApi", "SharedArray"]


class SharedSegment:
    """Flat shared address space with named, page-aligned allocations."""

    def __init__(self, params: MachineParams):
        self.params = params
        self._cursor = 0
        self._arrays: Dict[str, tuple] = {}

    def alloc(self, name: str, nwords: int, page_align: bool = True) -> int:
        """Reserve ``nwords``; returns the base word address."""
        if nwords <= 0:
            raise ValueError(f"allocation must be positive, got {nwords}")
        if name in self._arrays:
            raise ValueError(f"duplicate allocation name {name!r}")
        if page_align:
            words_per_page = self.params.words_per_page
            self._cursor = -(-self._cursor // words_per_page) * words_per_page
        base = self._cursor
        self._cursor += nwords
        self._arrays[name] = (base, nwords)
        return base

    def base_of(self, name: str) -> int:
        return self._arrays[name][0]

    @property
    def total_words(self) -> int:
        return self._cursor

    @property
    def n_pages(self) -> int:
        words_per_page = self.params.words_per_page
        return -(-self._cursor // words_per_page)


class DsmApi:
    """One process's handle on the DSM: issued from application code.

    All methods are generators; applications drive them with
    ``yield from``.
    """

    def __init__(self, protocol, pid: int):
        self.protocol = protocol
        self.pid = pid
        self.nprocs = protocol.n
        # Consecutive private-compute holds coalesce into one simulated
        # hold, flushed lazily before the next shared/sync operation (or
        # by the harness when the worker body returns).  No simulated
        # time elapses between a buffered compute and its flush point,
        # so cycles and interrupt behavior are unchanged.
        self._compute_buffer = 0.0

    def flush_compute(self):
        """Generator: issue any buffered private-compute cycles now."""
        cycles = self._compute_buffer
        if cycles:
            self._compute_buffer = 0.0
            yield from self.protocol.proc_compute(self.pid, cycles)

    def _flush_then(self, inner):
        """Generator: flush buffered compute, then delegate to ``inner``."""
        cycles = self._compute_buffer
        self._compute_buffer = 0.0
        yield from self.protocol.proc_compute(self.pid, cycles)
        result = yield from inner
        return result

    # The shared/sync operations below return the protocol's generator
    # directly when no compute is buffered: the caller's ``yield from``
    # drives it identically, but one delegation frame per operation --
    # the hottest path in the whole simulator -- disappears.

    def read(self, addr: int, nwords: int = 1):
        """Read ``nwords`` shared words (drive with ``yield from``);
        returns ndarray."""
        inner = self.protocol.proc_read(self.pid, addr, nwords)
        if self._compute_buffer:
            return self._flush_then(inner)
        return inner

    def read1(self, addr: int):
        """Generator: read a single shared word; returns a float."""
        if self._compute_buffer:
            yield from self.flush_compute()
        values = yield from self.protocol.proc_read(self.pid, addr, 1)
        return float(values[0])

    def write(self, addr: int, values):
        """Write scalar or array ``values`` at ``addr`` (drive with
        ``yield from``)."""
        inner = self.protocol.proc_write(self.pid, addr, values)
        if self._compute_buffer:
            return self._flush_then(inner)
        return inner

    def acquire(self, lock: int):
        """Acquire a global lock (drive with ``yield from``)."""
        inner = self.protocol.proc_acquire(self.pid, lock)
        if self._compute_buffer:
            return self._flush_then(inner)
        return inner

    def release(self, lock: int):
        """Release a global lock (drive with ``yield from``)."""
        inner = self.protocol.proc_release(self.pid, lock)
        if self._compute_buffer:
            return self._flush_then(inner)
        return inner

    def barrier(self, barrier: int):
        """Global barrier, all processes participate (drive with
        ``yield from``)."""
        inner = self.protocol.proc_barrier(self.pid, barrier)
        if self._compute_buffer:
            return self._flush_then(inner)
        return inner

    def compute(self, cycles: float):
        """Generator: ``cycles`` of private computation (busy time).

        Buffered: consecutive computes merge into a single hold issued
        at the next shared/sync operation (or at worker exit).
        """
        self._compute_buffer += cycles
        return
        yield  # unreachable: keeps this a generator for `yield from`


class SharedArray:
    """Array view over a shared allocation, for application convenience."""

    def __init__(self, api: DsmApi, base: int, length: int):
        self.api = api
        self.base = base
        self.length = length

    def read(self, index: int, nwords: int = 1):
        """Read ``nwords`` starting at ``index`` (drive with
        ``yield from``)."""
        self._check(index, nwords)
        return self.api.read(self.base + index, nwords)

    def read1(self, index: int):
        """Generator: read one element as a float."""
        self._check(index, 1)
        return (yield from self.api.read1(self.base + index))

    def write(self, index: int, values):
        """Write scalar/array ``values`` starting at ``index`` (drive
        with ``yield from``)."""
        nwords = len(values) if isinstance(values, (Sequence, np.ndarray)) \
            else 1
        self._check(index, nwords)
        return self.api.write(self.base + index, values)

    def _check(self, index: int, nwords: int) -> None:
        if index < 0 or index + nwords > self.length:
            raise IndexError(
                f"access [{index}, {index + nwords}) outside array of "
                f"length {self.length}")
