"""Protocol message types and the DSM protocol base class.

Messages are plain dataclasses; each knows its wire size so the network
charges realistic serialization time.  The :class:`DsmProtocol` base
class owns the pieces common to TreadMarks and AURC:

* the shared segment (page-indexed address space);
* per-node NIC handler installation and message dispatch;
* the pending-request table (token -> completion event) that matches
  replies to the waits that issued them;
* worker start/finish plumbing used by the harness.

Subclasses implement ``handle_message`` routing and the shared-memory
operations (``proc_read`` / ``proc_write`` / ``proc_acquire`` /
``proc_release`` / ``proc_barrier``) invoked through
:class:`~repro.dsm.shmem.DsmApi`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dsm.diffs import DiffRecord
from repro.dsm.timestamps import IntervalRecord
from repro.hardware.node import Cluster, Node
from repro.hardware.params import MachineParams
from repro.sim import Event, Simulator

__all__ = [
    "Message",
    "PageRequest", "PageReply",
    "DiffRequest", "DiffReply",
    "LockRequest", "LockForward", "LockGrant", "LockRelease",
    "BarrierArrive", "BarrierRelease",
    "AurcPageRequest", "AurcPageReply",
    "DsmProtocol",
]


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------

@dataclass
class Message:
    """Base protocol message; ``sender`` is filled in by the send helper."""

    sender: int = field(init=False, default=-1)

    def size_bytes(self, params: MachineParams) -> int:
        return params.control_message_bytes


@dataclass
class PageRequest(Message):
    """Fetch a full page copy (cold miss) from its manager."""

    requester: int
    page: int
    token: int


@dataclass
class PageReply(Message):
    """A page copy plus the watermark snapshot describing its contents."""

    page: int
    token: int
    snapshot: Dict[int, int]
    frame: Any = field(default=None, repr=False)  # the actual words

    def size_bytes(self, params: MachineParams) -> int:
        return (params.control_message_bytes + params.page_size_bytes
                + len(self.snapshot) * 8)


@dataclass
class DiffRequest(Message):
    """Ask a writer for ``page``'s diffs covering (after_id, through_id].

    ``through_id`` is the newest interval the requester holds a write
    notice for.  Bounding the reply keeps the requester's applied set
    happens-before-closed: shipping fresher intervals than the notices
    would let a later fault apply an hb-older diff *after* them and roll
    the page backwards.
    """

    requester: int
    page: int
    after_id: int
    through_id: int
    token: int
    prefetch: bool = False


@dataclass
class DiffReply(Message):
    """Diffs answering one :class:`DiffRequest`."""

    page: int
    token: int
    diffs: List[DiffRecord]
    prefetch: bool = False

    def size_bytes(self, params: MachineParams) -> int:
        total = params.control_message_bytes
        for diff in self.diffs:
            total += params.diff_header_bytes + diff.size_bytes(
                params.word_bytes, params.words_per_page)
        return total


@dataclass
class LockRequest(Message):
    """Acquire request sent to the lock's manager."""

    lock: int
    requester: int
    payload: Any = None
    req: int = 0  # request id of the acquirer's stall span (tracing only)


@dataclass
class LockForward(Message):
    """Manager forwarding an acquire to the current queue tail."""

    lock: int
    requester: int
    payload: Any = None
    req: int = 0


@dataclass
class LockGrant(Message):
    """Ownership transfer carrying the protocol's coherence payload.

    For TreadMarks the payload is the grantor's missing interval records
    (write notices); for AURC it is page timestamps.
    """

    lock: int
    payload: Any = None
    req: int = 0

    def size_bytes(self, params: MachineParams) -> int:
        return params.control_message_bytes + _payload_bytes(self.payload,
                                                             params)


@dataclass
class LockRelease(Message):
    """Internal marker message (used only by tests/debug tooling)."""

    lock: int


@dataclass
class BarrierArrive(Message):
    """Barrier arrival carrying the node's new coherence information."""

    barrier: int
    node: int
    epoch: int
    payload: Any = None
    req: int = 0  # request id of the arriver's wait span (tracing only)

    def size_bytes(self, params: MachineParams) -> int:
        return params.control_message_bytes + _payload_bytes(self.payload,
                                                             params)


@dataclass
class BarrierRelease(Message):
    """Barrier release with the merged coherence information."""

    barrier: int
    epoch: int
    payload: Any = None
    req: int = 0

    def size_bytes(self, params: MachineParams) -> int:
        return params.control_message_bytes + _payload_bytes(self.payload,
                                                             params)


@dataclass
class AurcPageRequest(Message):
    """AURC page fetch: home must first drain updates up to the stamps."""

    requester: int
    page: int
    token: int
    stamps: Dict[int, int]  # writer -> sequence the home must have seen
    prefetch: bool = False


@dataclass
class AurcPageReply(Message):
    """Full page copy from the home node."""

    page: int
    token: int
    versions: Dict[int, int]
    prefetch: bool = False
    frame: Any = field(default=None, repr=False)  # the actual words

    def size_bytes(self, params: MachineParams) -> int:
        return (params.control_message_bytes + params.page_size_bytes
                + len(self.versions) * 8)


def _payload_bytes(payload: Any, params: MachineParams) -> int:
    """Wire size of a grant/barrier payload.

    Payloads are nested structures of interval records (write notices),
    vector-clock tuples, stamp dicts, and -- for the Lazy Hybrid
    variant -- piggybacked diffs; size them recursively.
    """
    if payload is None:
        return 0
    if isinstance(payload, dict):
        return 16 * len(payload)
    if hasattr(payload, "notice_count"):  # IntervalRecord-like
        return (params.interval_header_bytes
                + payload.notice_count * params.write_notice_bytes)
    if isinstance(payload, DiffRecord):
        return (params.diff_header_bytes
                + payload.size_bytes(params.word_bytes,
                                     params.words_per_page))
    if isinstance(payload, (list, tuple)):
        if all(isinstance(x, (int, float)) for x in payload):
            return 4 * len(payload)  # a vector clock
        return sum(_payload_bytes(item, params) for item in payload)
    return 16


# ---------------------------------------------------------------------------
# protocol base
# ---------------------------------------------------------------------------

class DsmProtocol:
    """Common machinery for the DSM protocol engines."""

    name = "dsm"

    def __init__(self, sim: Simulator, cluster: Cluster,
                 params: MachineParams):
        self.sim = sim
        self.cluster = cluster
        self.params = params
        self.n = params.n_processors
        self._tokens = itertools.count(1)
        # token -> (event, context) for replies to outstanding requests.
        self._pending: Dict[int, Tuple[Event, Any]] = {}
        # Per-processor id of the stall span currently on the timeline
        # (0 = none); request issue legs reference it as their cause.
        # Only maintained while request-lifecycle tracing is enabled.
        self._stall_req: List[int] = [0] * self.n
        for node in cluster.nodes:
            node.nic.handler = self._make_handler(node)

    # -- subclass interface -------------------------------------------------

    def handle_message(self, node: Node, msg: Message) -> None:
        """Route one delivered message (must not block)."""
        raise NotImplementedError

    def proc_read(self, pid: int, addr: int, nwords: int):
        raise NotImplementedError

    def proc_write(self, pid: int, addr: int, values):
        raise NotImplementedError

    def proc_acquire(self, pid: int, lock: int):
        raise NotImplementedError

    def proc_release(self, pid: int, lock: int):
        raise NotImplementedError

    def proc_barrier(self, pid: int, barrier: int):
        raise NotImplementedError

    # -- plumbing -------------------------------------------------------------

    def _make_handler(self, node: Node):
        def handler(msg: Message) -> None:
            self.handle_message(node, msg)
        return handler

    def new_token(self) -> int:
        return next(self._tokens)

    def register_pending(self, token: int, context: Any = None) -> Event:
        event = Event(self.sim)
        self._pending[token] = (event, context)
        return event

    @property
    def pending_requests(self) -> int:
        """Outstanding page/diff requests awaiting replies (for sampling)."""
        return len(self._pending)

    def pending_context(self, token: int) -> Any:
        entry = self._pending.get(token)
        return entry[1] if entry else None

    def complete_pending(self, token: int, value: Any = None) -> None:
        entry = self._pending.pop(token, None)
        if entry is None:
            return
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("req"):
            tracer.emit("req", leg="done", req=token)
        event, _context = entry
        if not event.triggered:
            event.succeed(value)

    def send(self, src_node: Node, dst: int, msg: Message,
             traffic_class: str = "protocol"):
        """Send ``msg`` from ``src_node``; charges the caller.

        Returns the NIC's injection generator directly (drive with
        ``yield from``): no wrapper frame on the hottest path.
        """
        msg.sender = src_node.node_id
        return src_node.nic.send(dst, msg, msg.size_bytes(self.params),
                                 traffic_class,
                                 req=self.request_id_of(msg))

    # -- request-lifecycle spans (guarded: free when tracing is off) --

    @staticmethod
    def request_id_of(msg: Message) -> int:
        """The request id a message travels under (0 when untracked)."""
        return getattr(msg, "token", 0) or getattr(msg, "req", 0)

    def new_span_id(self) -> int:
        """Fresh id for a stall/sync span; 0 when "req" tracing is off.

        Draws from the same counter as message tokens, so request ids
        and span ids share one namespace and causal analysis can link
        them without disambiguation.  Pure bookkeeping: drawing an id
        never advances simulated time.
        """
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("req"):
            return self.new_token()
        return 0

    def set_stall(self, pid: int, sid: int) -> int:
        """Mark ``sid`` as processor ``pid``'s current stall span;
        returns the previous value so callers can restore it."""
        previous = self._stall_req[pid]
        self._stall_req[pid] = sid
        return previous

    def note_issue(self, node: Node, dst: int, msg: Message,
                   **extra: Any) -> None:
        """Emit the "issue" leg of a request: which stall caused it,
        what it targets, and where it is going."""
        tracer = self.sim.tracer
        if tracer is None or not tracer.wants("req"):
            return
        payload: Dict[str, Any] = dict(extra)
        cause = self._stall_req[node.node_id]
        if cause:
            payload["cause"] = cause
        for key in ("page", "lock", "barrier"):
            value = getattr(msg, key, None)
            if value is not None:
                payload[key] = value
        if getattr(msg, "prefetch", False):
            payload["prefetch"] = True
        tracer.emit("req", leg="issue", req=self.request_id_of(msg),
                    node=node.node_id, dst=dst,
                    kind=type(msg).__name__, **payload)

    def note_sync_span(self, node: Node, category: str, action: str,
                       start: float, **extra: Any) -> None:
        """Emit a zero-or-more-cycle sync span ending now (skips empties)."""
        tracer = self.sim.tracer
        if tracer is None or not tracer.wants(category):
            return
        dur = self.sim.now - start
        if dur <= 0:
            return
        tracer.emit(category, node=node.node_id, action=action,
                    begin=start, dur=dur, **extra)

    # -- page geometry helpers -----------------------------------------------

    def page_of(self, addr: int) -> int:
        return addr // self.params.words_per_page

    def page_offset(self, addr: int) -> int:
        return addr % self.params.words_per_page

    def page_manager(self, page: int) -> int:
        """Static home/manager assignment (round-robin by page number)."""
        return page % self.n

    def lock_manager(self, lock: int) -> int:
        return lock % self.n

    def split_by_page(self, addr: int, nwords: int):
        """Yield (page, offset, count) chunks of a possibly-spanning access."""
        words_per_page = self.params.words_per_page
        remaining = nwords
        cursor = addr
        while remaining > 0:
            page = cursor // words_per_page
            offset = cursor % words_per_page
            count = min(remaining, words_per_page - offset)
            yield page, offset, count
            cursor += count
            remaining -= count
