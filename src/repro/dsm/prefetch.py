"""Diff-prefetching heuristic and statistics (paper section 3.2).

The heuristic: at lock-acquire (and barrier-release) points, a page that
this node *cached and referenced* but that has just been (or remains)
invalidated is likely to be referenced again, so its diffs are requested
immediately instead of waiting for the access fault.  Write notices name
the processors that must supply the diffs.

The statistics mirror the paper's analysis: a prefetch is **useful** when
the page is referenced after the prefetched diffs arrive, **useless**
when the page is re-invalidated before any reference (or never referenced
again) -- the paper reports >85% useless prefetches for Water and Radix
-- and **late** when the access fault arrives while the prefetch is
still in flight (the fault then waits for it rather than re-requesting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dsm.page import TmPage

__all__ = ["PrefetchStats", "should_prefetch", "note_prefetch"]


def note_prefetch(sim, node_id: int, action: str, page: int,
                  **extra: Any) -> None:
    """Guarded observability emission for one prefetch lifecycle event.

    ``action`` is one of ``issue`` / ``hit`` / ``useless`` / ``late``,
    mirroring the :class:`PrefetchStats` counters; both TreadMarks and
    AURC route their prefetch accounting through here so traces and
    metrics stay comparable across protocols.  Zero-cost when neither a
    tracer nor a registry is attached to ``sim``.
    """
    metrics = sim.metrics
    if metrics is not None:
        metrics.inc("prefetch_events", node=node_id, action=action)
    audit = sim.audit
    if audit is not None:
        # The auditor keys useless/useful classification to the request
        # tokens the issue leg carried, so `repro analyze` and the
        # paper's useless-prefetch counter agree on the same ids.
        audit.prefetch(node_id, action, page,
                       tokens=extra.get("tokens"))
    tracer = sim.tracer
    if tracer is not None and tracer.wants("prefetch"):
        extra.pop("tokens", None)
        tracer.emit("prefetch", node=node_id, action=action, page=page,
                    **extra)


@dataclass
class PrefetchStats:
    """Counters for prefetch effectiveness analysis."""

    issued: int = 0          # prefetch operations (one per page)
    diff_requests: int = 0   # diff requests sent on behalf of prefetches
    useful: int = 0          # page referenced after prefetch completed
    useless: int = 0         # re-invalidated or never referenced
    late: int = 0            # fault waited on an in-flight prefetch
    lead_cycles_total: float = 0.0   # issue -> first use, for useful ones

    @property
    def completed(self) -> int:
        return self.useful + self.useless

    def useless_fraction(self) -> float:
        done = self.completed
        return self.useless / done if done else 0.0

    def mean_lead_cycles(self) -> float:
        return (self.lead_cycles_total / self.useful) if self.useful else 0.0


def should_prefetch(page_state: TmPage) -> bool:
    """The paper's heuristic: cached, referenced, now invalid, not already
    being prefetched."""
    return (page_state.has_frame
            and page_state.referenced
            and not page_state.is_valid()
            and page_state.prefetch_event is None)


# The adaptive strategy gives up on a page after this many consecutive
# useless prefetches; a demand fault on the page resets the streak (it
# clearly is being used again).
ADAPTIVE_USELESS_LIMIT = 2


def should_prefetch_adaptive(page_state: TmPage) -> bool:
    """An adaptive refinement (the paper's future work, explored in
    Bianchini et al.'s tech report ES-401/96): also require the page's
    recent prefetch history not to be a string of misfires."""
    return (should_prefetch(page_state)
            and page_state.pf_useless_streak < ADAPTIVE_USELESS_LIMIT)
