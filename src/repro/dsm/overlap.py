"""Overlap-mode definitions (paper section 5.1's six TreadMarks bars).

Each mode is a combination of the three overhead-tolerance techniques
the protocol controller affords:

* ``offload`` (**I**): basic protocol actions (page/diff request service,
  diff creation/application, message send/receive) run on the protocol
  controller; the computation processor is interrupted only for
  "complicated" work (interval and write-notice processing).
* ``hardware_diffs`` (**D**): diffs are created and applied by the
  controller's bit-vector-directed DMA engine; twins are never needed.
  Requires ``offload`` (the DMA engine lives on the controller).
* ``prefetch`` (**P**): at lock acquires, previously cached-and-invalidated
  pages have their diffs requested ahead of the next access fault.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverlapMode", "BASE", "I", "ID", "P", "IP", "IPD", "ALL_MODES",
           "mode_by_name"]


@dataclass(frozen=True)
class OverlapMode:
    """One configuration of the TreadMarks protocol."""

    name: str
    offload: bool = False
    hardware_diffs: bool = False
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.hardware_diffs and not self.offload:
            raise ValueError(
                "hardware diffs require the protocol controller (offload)")

    @property
    def uses_controller(self) -> bool:
        return self.offload

    @property
    def uses_twins(self) -> bool:
        """Twins are needed whenever diffs are computed in software."""
        return not self.hardware_diffs


BASE = OverlapMode("Base")
I = OverlapMode("I", offload=True)
ID = OverlapMode("I+D", offload=True, hardware_diffs=True)
P = OverlapMode("P", prefetch=True)
IP = OverlapMode("I+P", offload=True, prefetch=True)
IPD = OverlapMode("I+P+D", offload=True, hardware_diffs=True, prefetch=True)

ALL_MODES = (BASE, I, ID, P, IP, IPD)

_BY_NAME = {mode.name: mode for mode in ALL_MODES}


def mode_by_name(name: str) -> OverlapMode:
    """Look up one of the six canonical modes by its paper label."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown overlap mode {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
