"""Vector timestamps and interval records (paper section 2).

TreadMarks divides each processor's execution into **intervals**
delimited by synchronization operations.  A :class:`VectorClock` counts,
per processor, the highest interval this node knows about; an
:class:`IntervalRecord` names one completed interval and the pages it
wrote.  Write notices -- "page X was modified in interval (w, i)" -- are
derived from interval records, so the same objects travel in lock-grant
and barrier messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["VectorClock", "IntervalRecord", "IntervalLog"]


class VectorClock:
    """A per-processor interval counter vector with merge/compare ops."""

    __slots__ = ("_clock",)

    def __init__(self, n: int = 0, values: Iterable[int] | None = None):
        if values is not None:
            self._clock = list(values)
        else:
            self._clock = [0] * n

    def __len__(self) -> int:
        return len(self._clock)

    def __getitem__(self, proc: int) -> int:
        return self._clock[proc]

    def __setitem__(self, proc: int, value: int) -> None:
        if value < self._clock[proc]:
            raise ValueError("vector clock entries never decrease")
        self._clock[proc] = value

    def advance(self, proc: int) -> int:
        """Start ``proc``'s next interval; returns the new interval id."""
        self._clock[proc] += 1
        return self._clock[proc]

    def merge(self, other: "VectorClock") -> None:
        """Element-wise maximum, in place."""
        for i, value in enumerate(other._clock):
            if value > self._clock[i]:
                self._clock[i] = value

    def dominates(self, other: "VectorClock") -> bool:
        """True if self >= other element-wise (other's intervals all seen)."""
        return all(s >= o for s, o in zip(self._clock, other._clock))

    def copy(self) -> "VectorClock":
        return VectorClock(values=self._clock)

    def as_tuple(self) -> Tuple[int, ...]:
        return tuple(self._clock)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, VectorClock)
                and self._clock == other._clock)

    def __repr__(self) -> str:
        return f"VectorClock({self._clock})"


@dataclass(frozen=True, slots=True)
class IntervalRecord:
    """One completed interval: who, which interval, which pages written.

    ``vc`` is the writer's vector clock at the moment the interval
    closed; it stamps the interval's position in the happens-before
    partial order and is what orders diff application across writers.
    Slotted: large machines hold hundreds of thousands of these.
    """

    writer: int
    interval_id: int
    pages: Tuple[int, ...]
    vc: Tuple[int, ...] = ()

    @property
    def notice_count(self) -> int:
        return len(self.pages)


class IntervalLog:
    """A node's knowledge of completed intervals, indexed by writer.

    Supports the two queries the protocol needs:

    * :meth:`records_after` -- the interval records of ``writer`` with id
      greater than some bound (what a lock grantor must ship to a
      requester whose vector clock lags).
    * :meth:`add` -- merge a record learned from a peer (idempotent).
    """

    def __init__(self, n_procs: int):
        self.n_procs = n_procs
        self._by_writer: List[Dict[int, IntervalRecord]] = [
            {} for _ in range(n_procs)
        ]

    def add(self, record: IntervalRecord) -> bool:
        """Insert a record; returns True if it was new."""
        slot = self._by_writer[record.writer]
        if record.interval_id in slot:
            return False
        slot[record.interval_id] = record
        return True

    def records_after(self, writer: int,
                      after_id: int) -> List[IntervalRecord]:
        """All known records of ``writer`` with interval id > ``after_id``."""
        slot = self._by_writer[writer]
        return [slot[i] for i in sorted(slot) if i > after_id]

    def records_behind(self, clock: VectorClock) -> List[IntervalRecord]:
        """Every known record not covered by ``clock`` (grant payload)."""
        out: List[IntervalRecord] = []
        for writer in range(self.n_procs):
            out.extend(self.records_after(writer, clock[writer]))
        return out

    def count(self) -> int:
        return sum(len(slot) for slot in self._by_writer)
