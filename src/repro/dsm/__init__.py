"""Software distributed shared memory protocols.

The package implements the two protocol families the paper evaluates:

* :mod:`repro.dsm.treadmarks` -- TreadMarks-style lazy release
  consistency with vector-timestamped intervals, write notices, twins,
  and word-granularity diffs, in all six overlap modes (Base, I, I+D,
  P, I+P, I+P+D) enabled by the protocol controller.
* :mod:`repro.dsm.aurc` -- AURC: home-based automatic-update release
  consistency with optimized pair-wise sharing, with and without
  prefetching.

Supporting modules: vector timestamps and intervals
(:mod:`repro.dsm.timestamps`), diff records (:mod:`repro.dsm.diffs`),
per-node page state (:mod:`repro.dsm.page`), message types and the
protocol base class (:mod:`repro.dsm.protocol`), distributed locks and
barriers (:mod:`repro.dsm.locks`, :mod:`repro.dsm.barriers`), overlap
mode definitions (:mod:`repro.dsm.overlap`), prefetch bookkeeping
(:mod:`repro.dsm.prefetch`), and the application-facing shared-memory
API (:mod:`repro.dsm.shmem`).
"""

from repro.dsm.overlap import (
    ALL_MODES,
    BASE,
    I,
    ID,
    IP,
    IPD,
    P,
    OverlapMode,
)
from repro.dsm.shmem import DsmApi, SharedSegment

__all__ = [
    "ALL_MODES",
    "BASE",
    "DsmApi",
    "I",
    "ID",
    "IP",
    "IPD",
    "OverlapMode",
    "P",
    "SharedSegment",
]
