"""Per-node page state for the TreadMarks protocols.

Each node tracks, for every shared page it has touched:

* its local **frame** (the actual words, a numpy array);
* per-writer **applied**/**notified** interval watermarks.  A write
  notice (w, i) is *pending* while ``notified[w] > applied[w]``; a page
  is valid only when it has a frame and no pending notices;
* write-collection state: the **twin** flag and the **dirty mask** (the
  bit vector of words written since the last diff creation), plus the
  list of completed-but-undiffed interval ids;
* the **diff store** of already-created diffs (reused across requesters);
* prefetch bookkeeping (referenced flag, in-flight event).

The watermark representation keeps validity checks O(sharers) and makes
"which diffs do I still need" a per-writer range query, matching how
TreadMarks walks its write-notice lists.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.dsm.compact import NodeIntMap
from repro.dsm.diffs import DiffRecord, apply_diff, diff_from_mask

__all__ = ["TmPage"]


class TmPage:
    """One node's view of one shared page (TreadMarks)."""

    __slots__ = (
        "page", "words", "frame", "applied", "notified", "write_active",
        "has_twin", "dirty_mask", "last_closed_id", "diff_store",
        "unmaterialized", "referenced", "prefetch_event",
        "prefetch_issued_at", "prefetch_ready", "pf_useless_streak",
        "copyset", "audit",
    )

    def __init__(self, page: int, words: int, audit=None):
        self.page = page
        self.words = words
        # Coherence-audit adapter (repro.dsm.audit.NodeAudit) or None.
        # Emissions below guard on it, so an unaudited run pays one
        # attribute check per transition -- the sim.tracer idiom.
        self.audit = audit
        self.frame: Optional[np.ndarray] = None
        # Per-writer interval watermarks: insertion-ordered compact maps
        # (pending_writers() order = notice arrival order = diff-request
        # issue order, which the golden cycle fixtures pin).
        self.applied = NodeIntMap()
        self.notified = NodeIntMap()
        # -- write collection (this node as writer) -----------------------
        self.write_active = False      # twin made / bit vector armed
        self.has_twin = False
        self.dirty_mask: Optional[np.ndarray] = None
        self.last_closed_id = 0
        self.diff_store: List[DiffRecord] = []
        # Diffs whose *data* is pinned (snapshotted at interval close, so
        # values are exact) but whose creation *cost* has not been charged
        # yet -- TreadMarks materializes lazily at the first diff request.
        self.unmaterialized: List[DiffRecord] = []
        # -- prefetch bookkeeping -----------------------------------------
        self.referenced = False
        self.prefetch_event = None
        self.prefetch_issued_at: Optional[float] = None
        self.prefetch_ready = False
        # Consecutive useless prefetches of this page (the adaptive
        # strategy stops prefetching a page after repeated misfires).
        self.pf_useless_streak = 0
        # Nodes that fetched this page or its diffs from us, mapped to
        # the newest of our intervals they were served: the approximate
        # copyset (and per-reader watermark) the Lazy Hybrid variant
        # consults before piggybacking updates on lock grants.  The
        # bitset-backed map keeps membership O(1) at 1024 nodes.
        self.copyset = NodeIntMap()

    # -- validity ------------------------------------------------------------

    @property
    def has_frame(self) -> bool:
        return self.frame is not None

    def pending_writers(self) -> List[int]:
        """Writers whose notices have not been covered by applied diffs."""
        return [w for w, notice in self.notified.items()
                if notice > self.applied.get(w, 0)]

    def is_valid(self) -> bool:
        return self.has_frame and not self.pending_writers()

    def ensure_frame(self) -> np.ndarray:
        if self.frame is None:
            self.frame = np.zeros(self.words, dtype=np.float64)
        return self.frame

    # -- notices --------------------------------------------------------------

    def record_notice(self, writer: int, interval_id: int) -> bool:
        """Merge a write notice; returns True if it newly invalidated."""
        was_valid = self.is_valid()
        if interval_id > self.notified.get(writer, 0):
            self.notified[writer] = interval_id
        newly_invalid = was_valid and not self.is_valid()
        if self.audit is not None:
            self.audit.notice(self.page, writer, interval_id,
                              newly_invalid)
        return newly_invalid

    def mark_applied(self, writer: int, through_id: int) -> None:
        if through_id > self.applied.get(writer, 0):
            self.applied[writer] = through_id
            if self.audit is not None:
                self.audit.applied_through(self.page, writer, through_id)

    def applied_snapshot(self) -> Dict[int, int]:
        """Watermarks describing this frame's contents (for page copies)."""
        return self.applied.as_dict()

    def adopt_snapshot(self, snapshot: Dict[int, int]) -> None:
        if self.audit is not None:
            self.audit.installed(self.page, snapshot)
        for writer, through_id in snapshot.items():
            self.mark_applied(writer, through_id)

    # -- write collection -----------------------------------------------------

    def arm_write_collection(self) -> None:
        """First write of an epoch: start twin/bit-vector tracking."""
        self.ensure_frame()
        self.write_active = True
        if self.dirty_mask is None:
            self.dirty_mask = np.zeros(self.words, dtype=bool)
        if self.audit is not None:
            self.audit.twin_armed(self.page)

    def record_write(self, offset: int, nwords: int,
                     values: np.ndarray) -> None:
        frame = self.ensure_frame()
        frame[offset:offset + nwords] = values
        if self.dirty_mask is not None:
            self.dirty_mask[offset:offset + nwords] = True
        if self.audit is not None:
            self.audit.write(self.page, self.write_active)

    def dirty_count(self) -> int:
        return int(self.dirty_mask.sum()) if self.dirty_mask is not None else 0

    def close_interval(self, interval_id: int, writer: int,
                       vc: tuple = ()) -> bool:
        """End an interval: pin this interval's modifications as a diff.

        The diff's *data* is snapshotted now (so its values are exactly
        the interval's output -- a consolidated twin diff could otherwise
        clobber another writer's causally-later words); its creation
        *cost* is charged lazily when a request first materializes it.
        Returns True when the page was dirty this interval.  Write
        collection is disarmed so the next write re-arms it.
        """
        if not self.write_active:
            return False
        self.write_active = False
        self.has_twin = False
        assert self.dirty_mask is not None and self.frame is not None
        diff = diff_from_mask(writer, self.page, self.last_closed_id,
                              interval_id, self.dirty_mask, self.frame,
                              to_vc=vc)
        self.dirty_mask[:] = False
        self.last_closed_id = interval_id
        self.diff_store.append(diff)
        self.unmaterialized.append(diff)
        if self.audit is not None:
            self.audit.interval_closed(self.page, writer, interval_id)
            self.audit.diff_created(self.page, writer, diff.from_id,
                                    diff.to_id)
        self.mark_applied(writer, interval_id)
        return True

    # -- diff lookup and materialization ----------------------------------

    def materialize(self, diffs: List[DiffRecord]) -> List[DiffRecord]:
        """Return (and clear) the subset of ``diffs`` not yet charged."""
        fresh = [d for d in diffs if d in self.unmaterialized]
        if fresh:
            self.unmaterialized = [d for d in self.unmaterialized
                                   if d not in fresh]
            if self.audit is not None:
                self.audit.materialized(self.page, len(fresh))
        return fresh

    def diffs_after(self, after_id: int) -> List[DiffRecord]:
        """Stored diffs whose range ends beyond ``after_id``, in order."""
        return [d for d in self.diff_store if d.to_id > after_id]

    def apply_incoming(self, diff: DiffRecord) -> None:
        """Apply a remote diff to the local frame and advance watermarks.

        Locally dirty words (written since our last interval close) are
        protected: for a data-race-free program a remote diff can only
        overlap them through intervals we already applied and then
        overwrote, so the local value is the causally newest.
        """
        frame = self.ensure_frame()
        if self.audit is not None:
            self.audit.diff_applied(self.page, diff.writer,
                                    diff.from_id, diff.to_id,
                                    self.applied.get(diff.writer, 0))
        if (diff.dirty_words and self.dirty_mask is not None
                and self.write_active and self.dirty_mask.any()):
            local_dirty = self.dirty_mask[diff.indices]
            keep = ~local_dirty
            if keep.any():
                frame[diff.indices[keep]] = diff.values[keep]
        else:
            apply_diff(frame, diff)
        self.mark_applied(diff.writer, diff.to_id)

    # -- memory accounting ----------------------------------------------------

    def state_nbytes(self) -> int:
        """Bytes of per-node coherence metadata on this page (excludes
        the data frame and diff payloads -- those scale with the app,
        not the machine size)."""
        return (self.applied.nbytes() + self.notified.nbytes()
                + self.copyset.nbytes())

    def state_dict_equiv_nbytes(self) -> int:
        """Bytes the pre-compaction dict representation would cost."""
        return (self.applied.dict_equiv_nbytes()
                + self.notified.dict_equiv_nbytes()
                + self.copyset.dict_equiv_nbytes())
