"""Centralized barriers with coherence piggybacking.

Each barrier id has a static manager (``barrier % n``).  Arriving nodes
send their new coherence information (TreadMarks: interval records the
manager lacks; AURC: page timestamps) with the arrival message; the last
arrival triggers a release broadcast carrying the merged information.
This matches TreadMarks' barrier implementation, where interval and
write-notice exchange ride the barrier messages.

Charging follows the convention in :mod:`repro.dsm.locks`: arrival
handling on the manager is a raw generator run as a service (IPC unless
the manager is itself blocked in the barrier -- its own wait is SYNC);
the waiting node's sends/waits/release processing charge SYNC.

Protocol hooks:

* ``barrier_arrive_payload(node)`` -> payload for the arrival message;
* ``barrier_merge(node, payloads)`` -- raw generator on the manager,
  merging all arrival payloads (returns the merged state);
* ``barrier_release_payload(node, dst, merged)`` -> payload for one
  node's release message;
* ``barrier_process_release(node, payload)`` -- raw generator on each
  node completing the barrier (invalidations, clock merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.dsm.protocol import BarrierArrive, BarrierRelease
from repro.hardware.node import Node
from repro.sim import Event
from repro.stats.breakdown import Category

__all__ = ["BarrierService", "BarrierStats"]


@dataclass
class BarrierStats:
    episodes: int = 0
    arrivals: int = 0


@dataclass
class _ManagerBarrierState:
    epoch: int = 0
    arrived: int = 0
    payloads: List[Any] = field(default_factory=list)
    # node -> request id of its arrival (tracing only); each node's
    # release message carries its own wait span's id back.
    reqs: Dict[int, int] = field(default_factory=dict)


@dataclass
class _NodeBarrierState:
    epoch: int = 0
    waiting: Optional[Event] = None
    release_payload: Any = None


class BarrierService:
    """Barrier protocol engine; one instance serves the whole cluster."""

    def __init__(self, protocol):
        self.protocol = protocol
        self.sim = protocol.sim
        self.params = protocol.params
        self.stats = BarrierStats()
        n = protocol.n
        self._manager_state: list[Dict[int, _ManagerBarrierState]] = [
            {} for _ in range(n)]
        self._node_state: list[Dict[int, _NodeBarrierState]] = [
            {} for _ in range(n)]

    def _mstate(self, node_id: int, barrier: int) -> _ManagerBarrierState:
        return self._manager_state[node_id].setdefault(
            barrier, _ManagerBarrierState())

    def _nstate(self, node_id: int, barrier: int) -> _NodeBarrierState:
        return self._node_state[node_id].setdefault(
            barrier, _NodeBarrierState())

    # -- the waiting side -----------------------------------------------------

    def wait(self, node: Node, barrier: int):
        """Generator: arrive at ``barrier`` and block until released."""
        pid = node.node_id
        state = self._nstate(pid, barrier)
        state.epoch += 1
        start = self.sim.now
        rid = self.protocol.new_span_id()
        prev_stall = self.protocol.set_stall(pid, rid) if rid else 0
        state.waiting = Event(self.sim)
        manager = self.protocol.lock_manager(barrier)
        payload = self.protocol.barrier_arrive_payload(node)
        arrive = BarrierArrive(barrier=barrier, node=pid, epoch=state.epoch,
                               payload=payload, req=rid)
        self.stats.arrivals += 1
        self.protocol.note_issue(node, manager, arrive)
        yield from node.cpu.run_generator(
            self.protocol.send(node, manager, arrive), Category.SYNC)
        yield from node.cpu.wait(state.waiting, Category.SYNC)
        release_payload = state.release_payload
        state.waiting = None
        state.release_payload = None
        yield from node.cpu.run_generator(
            self.protocol.barrier_process_release(node, release_payload),
            Category.SYNC)
        if rid:
            self.protocol.set_stall(pid, prev_stall)
        elapsed = self.sim.now - start
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.observe("barrier_wait_cycles", elapsed,
                            node=node.node_id)
        audit = self.sim.audit
        if audit is not None:
            # Advance this node's timeline interval: coherence events
            # after this land in the next barrier-delimited column.
            audit.barrier_done(node.node_id)
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("barrier"):
            tracer.emit("barrier", node=node.node_id, action="wait",
                        barrier=barrier, epoch=state.epoch,
                        begin=start, dur=elapsed,
                        **({"req": rid} if rid else {}))

    # -- the manager side -----------------------------------------------------

    def handle_arrive(self, node: Node, msg: BarrierArrive):
        """Raw generator (manager service): count arrivals; maybe release."""
        yield self.sim.pooled_timeout(self.params.message_handler_cycles)
        mstate = self._mstate(node.node_id, msg.barrier)
        if mstate.arrived == 0:
            mstate.epoch += 1
        if msg.epoch != mstate.epoch:
            raise RuntimeError(
                f"barrier {msg.barrier} epoch mismatch: node {msg.node} "
                f"arrived for epoch {msg.epoch}, manager at {mstate.epoch}")
        mstate.arrived += 1
        mstate.payloads.append(msg.payload)
        if msg.req:
            mstate.reqs[msg.node] = msg.req
        if mstate.arrived < self.protocol.n:
            return
        # Last arrival: merge coherence info and broadcast releases.
        self.stats.episodes += 1
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc("barrier_episodes", barrier=msg.barrier)
        audit = self.sim.audit
        if audit is not None:
            audit.barrier_release(self.stats.episodes, self.sim.now)
        tracer = self.sim.tracer
        if tracer is not None and tracer.wants("barrier"):
            tracer.emit("barrier", node=node.node_id, action="release",
                        barrier=msg.barrier, epoch=mstate.epoch)
        payloads = mstate.payloads
        reqs = mstate.reqs
        mstate.arrived = 0
        mstate.payloads = []
        mstate.reqs = {}
        merged = yield from self.protocol.barrier_merge(node, payloads)
        for dst in range(self.protocol.n):
            payload = self.protocol.barrier_release_payload(node, dst,
                                                            merged)
            if dst == node.node_id:
                self._deliver_release(node, BarrierRelease(
                    barrier=msg.barrier, epoch=mstate.epoch,
                    payload=payload, req=reqs.get(dst, 0)))
            else:
                release = BarrierRelease(barrier=msg.barrier,
                                         epoch=mstate.epoch, payload=payload,
                                         req=reqs.get(dst, 0))
                yield from self.protocol.send(node, dst, release)

    def _deliver_release(self, node: Node, msg: BarrierRelease) -> None:
        state = self._nstate(node.node_id, msg.barrier)
        state.release_payload = msg.payload
        if state.waiting is None:
            raise RuntimeError(
                f"node {node.node_id} released from barrier {msg.barrier} "
                "it is not waiting on")
        if not state.waiting.triggered:
            state.waiting.succeed()

    def handle_release(self, node: Node, msg: BarrierRelease) -> None:
        """Synchronous (waiter): record payload and wake the waiter."""
        self._deliver_release(node, msg)
