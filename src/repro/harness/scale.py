"""Scale-out sweeps: the paper's sensitivity questions at 64-1024 nodes.

The paper evaluates I+D/I+P+D vs AURC on a 16-node 4x4 mesh; the
ROADMAP's open question is whether that ranking survives two orders of
magnitude more nodes and modern-fabric latency/bandwidth ratios.  This
module drives Em3d -- the application figures 13-16 sweep -- across
node counts, topologies, and machine presets, through the PR 3 parallel
runner and result cache, and shapes each run into a ``repro-bench/1``
archive row carrying the scale-specific metrics: events/s, peak RSS,
and the coherence-metadata footprint (compact bytes vs what the pre-PR
dict representation would have cost).

Problem sizes shrink as the machine grows (``SCALE_SIZES``): at 256+
nodes the simulated work per node is dominated by the O(N) barrier and
write-notice traffic itself, which is exactly the protocol behaviour
under study -- a full-size working set would only multiply wall time
without changing the question.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.bench import config_for, events_per_second
from repro.harness.parallel import SimRequest, SweepRunner
from repro.hardware.params import MachineParams
from repro.stats.breakdown import Category

__all__ = ["SCALE_NODE_COUNTS", "SCALE_PROTOCOLS", "SCALE_SIZES",
           "REGRESSION_SCALE_CELLS", "scale_sizes", "scale_request",
           "scale_matrix", "regression_scale_rows", "audit_scale_run"]

# Default sweep points: 64 and 256 every time; 1024 is the smoke point
# callers opt into explicitly (repro scale --nodes 1024).
SCALE_NODE_COUNTS: Tuple[int, ...] = (64, 256)

# The figure 13-16 protagonists plus the full overlap pipeline.
SCALE_PROTOCOLS: Tuple[str, ...] = ("I+D", "I+P+D", "aurc")

# Per-node-count problem sizes.  Keys absent here fall back to the
# nearest smaller configured count (so 128 runs the 64-node size).
SCALE_SIZES: Dict[str, Dict[int, dict]] = {
    "Em3d": {
        64: dict(n_nodes=2048, degree=4, iterations=2),
        256: dict(n_nodes=1024, degree=2, iterations=1),
        1024: dict(n_nodes=2048, degree=2, iterations=1),
    },
}


def scale_sizes(app_name: str, nprocs: int) -> dict:
    """Size kwargs for ``app_name`` at ``nprocs`` (copy)."""
    table = SCALE_SIZES[app_name]
    candidates = [n for n in table if n <= nprocs]
    anchor = max(candidates) if candidates else min(table)
    return dict(table[anchor])


def scale_request(app_name: str, nprocs: int, protocol: str,
                  topology: str = "mesh", preset: str = "paper1996",
                  verify: bool = True) -> SimRequest:
    """One cacheable scale-run request (explicit params, scale sizes)."""
    params = MachineParams.preset(preset, n_processors=nprocs,
                                  topology=topology)
    return SimRequest(app_name=app_name, nprocs=nprocs,
                      config=config_for(protocol), params=params,
                      size_kwargs=tuple(sorted(
                          scale_sizes(app_name, nprocs).items())),
                      verify=verify)


def _row(doc: dict, app_name: str, nprocs: int, topology: str,
         preset: str, cached: bool) -> dict:
    """Shape one result document into a ``repro-bench/1`` run row."""
    breakdown = doc.get("breakdown", {})
    total = sum(breakdown.get(c.value, 0.0) for c in Category) or 1.0
    fractions = {c.value: breakdown.get(c.value, 0.0) / total
                 for c in Category}
    events = int(doc.get("events_processed", 0))
    wall = float(doc.get("wall_seconds", 0.0))
    row = {
        "app": app_name,
        "protocol": doc["protocol"],
        "n_procs": nprocs,
        "quick": True,
        "scale": True,
        "topology": topology,
        "preset": preset,
        "execution_cycles": doc["execution_cycles"],
        "wall_seconds": wall,
        "events_processed": events,
        "events_per_second": events_per_second(events, wall),
        "cached": cached,
        "fractions": fractions,
        "diff_fraction": float(doc.get("diff_fraction", 0.0)),
        "verified": bool(doc.get("verified", False)),
    }
    if "peak_rss_kb" in doc:
        row["peak_rss_kb"] = doc["peak_rss_kb"]
    state = doc.get("coherence_state")
    if state:
        row["coherence_state_bytes"] = state["coherence_state_bytes"]
        row["coherence_state_dict_bytes"] = \
            state["coherence_state_dict_bytes"]
        row["coherence_pages"] = state["coherence_pages"]
        row["coherence_state_bytes_per_node"] = \
            state["coherence_state_bytes"] // max(1, nprocs)
    return row


def _run_cells(cells: Sequence[Tuple[int, str, str, str]],
               app_name: str, runner: Optional[SweepRunner],
               echo) -> List[dict]:
    """Run ``(nprocs, protocol, topology, preset)`` cells -> rows."""
    runner = runner if runner is not None else SweepRunner(jobs=1)
    requests = [scale_request(app_name, n, proto, topology=topo,
                              preset=preset)
                for n, proto, topo, preset in cells]
    results = runner.run_batch(requests)
    rows = []
    for (n, _proto, topo, preset), result in zip(cells, results):
        row = _row(result.doc, app_name, n, topo, preset, result.cached)
        rows.append(row)
        if echo is not None:
            origin = "cached" if result.cached else "simulated"
            state = row.get("coherence_state_bytes_per_node", 0)
            echo(f"  {app_name:8s} {row['protocol']:12s} {n:5d}p "
                 f"{topo:9s} {preset:9s} "
                 f"{row['execution_cycles'] / 1e6:8.2f} Mcycles  "
                 f"{row['wall_seconds']:6.2f} s  "
                 f"{row['events_per_second']:9.0f} ev/s  "
                 f"{state:7d} B/node  [{origin}]")
    return rows


def scale_matrix(node_counts: Sequence[int] = SCALE_NODE_COUNTS,
                 protocols: Sequence[str] = SCALE_PROTOCOLS,
                 topologies: Sequence[str] = ("mesh",),
                 presets: Sequence[str] = ("paper1996",),
                 app_name: str = "Em3d",
                 runner: Optional[SweepRunner] = None,
                 echo=print) -> List[dict]:
    """Run the full cross product; returns archive ``runs`` rows.

    Requests go through the sweep runner (memo, disk cache, optional
    process pool), so re-running an unchanged sweep is near-instant.
    """
    cells = [(n, proto, topo, preset)
             for topo in topologies for preset in presets
             for n in node_counts for proto in protocols]
    return _run_cells(cells, app_name, runner, echo)


# The scale rows recorded in the committed BENCH archive (and therefore
# regenerated by CI's regression gate on every push).  Chosen to cover
# every axis -- node count, topology, machine preset, protocol family --
# while staying affordable: the 256-node cells dominate at ~1 min
# total, and the 1024-node smoke point stays CLI-only
# (``repro scale --nodes 1024``).
REGRESSION_SCALE_CELLS: Tuple[Tuple[int, str, str, str], ...] = (
    (64, "I+D", "mesh", "paper1996"),
    (64, "I+P+D", "mesh", "paper1996"),
    (64, "aurc", "mesh", "paper1996"),
    (64, "I+D", "mesh", "rdma"),
    (64, "aurc", "mesh", "rdma"),
    (64, "I+D", "torus", "paper1996"),
    (256, "I+P+D", "mesh", "paper1996"),
    (256, "aurc", "mesh", "paper1996"),
)


def regression_scale_rows(runner: Optional[SweepRunner] = None,
                          echo=print) -> List[dict]:
    """The committed-archive scale rows (:data:`REGRESSION_SCALE_CELLS`)."""
    return _run_cells(REGRESSION_SCALE_CELLS, "Em3d", runner, echo)


def audit_scale_run(nprocs: int, protocol: str = "I+P+D",
                    topology: str = "mesh", preset: str = "paper1996",
                    app_name: str = "Em3d"):
    """One scale run under the coherence-audit sanitizer.

    Audited runs never touch the result cache (the auditor is not part
    of the fingerprint); returns the :class:`RunResult` -- callers check
    ``result.audit.violation_count``.
    """
    from repro.harness.experiments import APP_FACTORIES
    from repro.harness.runner import run_app

    params = MachineParams.preset(preset, n_processors=nprocs,
                                  topology=topology)
    app = APP_FACTORIES[app_name](nprocs, **scale_sizes(app_name, nprocs))
    return run_app(app, config_for(protocol), params=params,
                   verify=True, audit=True)
