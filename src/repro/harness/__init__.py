"""Experiment harness: run configurations and figure regeneration."""

from repro.harness.parallel import (
    ResultCache,
    SimRequest,
    SimResult,
    SweepRunner,
)
from repro.harness.runner import ProtocolConfig, RunResult, run_app

__all__ = ["ProtocolConfig", "RunResult", "run_app",
           "ResultCache", "SimRequest", "SimResult", "SweepRunner"]
