"""Experiment definitions: one function per paper table/figure.

Each function declares its app x protocol x machine-parameter matrix as
a batch of :class:`~repro.harness.parallel.SimRequest` objects, executes
the batch through a :class:`~repro.harness.parallel.SweepRunner`, and
assembles plain data structures (dicts keyed by application/mode/
parameter) that the benchmark harness and `repro.harness.figures`
render.  DESIGN.md section 4 maps experiment ids to these functions.

Every function takes an optional ``runner``; ``None`` builds a private
serial runner (in-process execution, in-memory memoization only), which
is exactly the old one-simulation-at-a-time behaviour.  Passing a shared
runner with ``jobs>1`` and/or a disk cache fans the matrix out over a
process pool and lets figures 13-16 reuse each other's default-parameter
baselines instead of recomputing them.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.apps.barnes import Barnes
from repro.apps.em3d import Em3d
from repro.apps.ocean import Ocean
from repro.apps.radix import Radix
from repro.apps.tsp import Tsp
from repro.apps.water import Water
from repro.dsm.overlap import ALL_MODES
from repro.harness.parallel import SimRequest, SweepRunner
from repro.harness.runner import ProtocolConfig, RunResult
from repro.hardware.params import MachineParams
from repro.stats.breakdown import Category

__all__ = [
    "APP_FACTORIES", "APP_ORDER", "MODE_ORDER", "scaled_app",
    "quick_sizes", "archive_report",
    "fig1_speedups", "fig2_breakdown", "fig_overlap_modes",
    "fig11_12_protocol_comparison", "fig13_messaging_overhead",
    "fig14_network_bandwidth", "fig15_memory_latency",
    "fig16_memory_bandwidth",
]

APP_FACTORIES: Dict[str, Callable[[int], object]] = {
    "TSP": Tsp,
    "Water": Water,
    "Radix": Radix,
    "Barnes": Barnes,
    "Em3d": Em3d,
    "Ocean": Ocean,
}

# The order the paper's figures list the applications.
APP_ORDER = ("TSP", "Water", "Radix", "Barnes", "Em3d", "Ocean")
MODE_ORDER = tuple(mode.name for mode in ALL_MODES)

# Problem-size knobs for quick (test) versus full (bench) runs.
_QUICK_SIZES = {
    "TSP": dict(n_cities=9, cutoff=3),
    "Water": dict(n_molecules=32, steps=1),
    "Radix": dict(n_keys=16384, radix_bits=5, key_bits=15),
    "Barnes": dict(n_bodies=64, steps=1),
    "Em3d": dict(n_nodes=2048, degree=4, iterations=2),
    "Ocean": dict(grid=34, iterations=3),
}


def quick_sizes(name: str) -> dict:
    """The quick-mode size kwargs for one application (copy)."""
    return dict(_QUICK_SIZES[name])


def scaled_app(name: str, nprocs: int, quick: bool = False):
    """Instantiate an application at full (default) or quick size."""
    factory = APP_FACTORIES[name]
    kwargs = _QUICK_SIZES[name] if quick else {}
    return factory(nprocs, **kwargs)


def archive_report(report_dir: str, name: str, nprocs: int,
                   config: ProtocolConfig, result: RunResult) -> None:
    """Write one RunReport JSON per simulation into ``report_dir``."""
    from repro.stats.report import RunReport

    os.makedirs(report_dir, exist_ok=True)
    slug = config.label.replace("/", "-").replace("+", "")
    path = os.path.join(report_dir, f"{name}-{slug}-{nprocs}p.json")
    with open(path, "w") as fh:
        json.dump(RunReport(result).to_json(), fh)


def _ensure_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    return runner if runner is not None else SweepRunner(jobs=1)


def _request(name: str, nprocs: int, config: ProtocolConfig,
             params: Optional[MachineParams] = None,
             quick: bool = False, verify: bool = False) -> SimRequest:
    return SimRequest.for_app(name, nprocs, config, params=params,
                              quick=quick, verify=verify)


# ---------------------------------------------------------------------------
# Figure 1: Base TreadMarks speedups, 1..16 processors
# ---------------------------------------------------------------------------

def fig1_speedups(apps: Sequence[str] = APP_ORDER,
                  proc_counts: Sequence[int] = (1, 2, 4, 8, 16),
                  quick: bool = False,
                  runner: Optional[SweepRunner] = None
                  ) -> Dict[str, Dict[int, float]]:
    """Speedup over the 1-processor run, per app and processor count."""
    runner = _ensure_runner(runner)
    config = ProtocolConfig.treadmarks("Base")
    requests: List[SimRequest] = []
    for name in apps:
        requests.append(_request(name, 1, config, quick=quick))
        for n in proc_counts:
            if n == 1:
                continue
            requests.append(_request(name, n, config, quick=quick))
    results = iter(runner.run_batch(requests))

    out: Dict[str, Dict[int, float]] = {}
    for name in apps:
        serial = next(results)
        # The serial run is the normalization baseline; it only shows up
        # as a data point when the caller actually asked for 1 processor.
        out[name] = {1: 1.0} if 1 in proc_counts else {}
        for n in proc_counts:
            if n == 1:
                continue
            result = next(results)
            out[name][n] = serial.execution_cycles / result.execution_cycles
    return out


# ---------------------------------------------------------------------------
# Figure 2: Base execution-time breakdown at 16 processors
# ---------------------------------------------------------------------------

def fig2_breakdown(apps: Sequence[str] = APP_ORDER, nprocs: int = 16,
                   quick: bool = False,
                   runner: Optional[SweepRunner] = None
                   ) -> Dict[str, Dict[str, float]]:
    """Normalized category fractions plus the diff-time percentage."""
    runner = _ensure_runner(runner)
    config = ProtocolConfig.treadmarks("Base")
    results = runner.run_batch(
        [_request(name, nprocs, config, quick=quick) for name in apps])

    out: Dict[str, Dict[str, float]] = {}
    for name, result in zip(apps, results):
        row = {cat.value: result.category_fraction(cat)
               for cat in Category}
        row["diff_pct"] = 100.0 * result.diff_fraction()
        out[name] = row
    return out


# ---------------------------------------------------------------------------
# Figures 5-10: overlap modes per application
# ---------------------------------------------------------------------------

def fig_overlap_modes(app_name: str, nprocs: int = 16,
                      modes: Sequence[str] = MODE_ORDER,
                      quick: bool = False,
                      runner: Optional[SweepRunner] = None
                      ) -> Dict[str, Dict[str, float]]:
    """Per overlap mode: normalized time (vs Base) and category split."""
    runner = _ensure_runner(runner)
    results = runner.run_batch(
        [_request(app_name, nprocs, ProtocolConfig.treadmarks(mode),
                  quick=quick) for mode in modes])

    out: Dict[str, Dict[str, float]] = {}
    base_cycles = None
    for mode, result in zip(modes, results):
        if mode == "Base":
            base_cycles = result.execution_cycles
        row = {cat.value: result.category_fraction(cat)
               for cat in Category}
        row["cycles"] = result.execution_cycles
        row["normalized_pct"] = (100.0 * result.execution_cycles
                                 / (base_cycles or result.execution_cycles))
        row["diff_pct"] = 100.0 * result.diff_fraction()
        stats = result.protocol_stats
        row["prefetches"] = stats.prefetch.issued
        row["useless_pf_pct"] = 100.0 * stats.prefetch.useless_fraction()
        out[mode] = row
    return out


# ---------------------------------------------------------------------------
# Figures 11-12: overlapping TreadMarks (I+D) vs AURC vs AURC+P
# ---------------------------------------------------------------------------

def fig11_12_protocol_comparison(
        apps: Sequence[str] = APP_ORDER, nprocs: int = 16,
        quick: bool = False,
        runner: Optional[SweepRunner] = None
        ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized running time (vs overlapping TreadMarks) per protocol."""
    runner = _ensure_runner(runner)
    configs = {
        "TM/I+D": ProtocolConfig.treadmarks("I+D"),
        "AURC": ProtocolConfig.aurc(),
        "AURC+P": ProtocolConfig.aurc(prefetch=True),
    }
    requests = [_request(name, nprocs, config, quick=quick)
                for name in apps for config in configs.values()]
    results = iter(runner.run_batch(requests))

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in apps:
        rows: Dict[str, Dict[str, float]] = {}
        baseline = None
        for label in configs:
            result = next(results)
            if baseline is None:
                baseline = result.execution_cycles
            row = {cat.value: result.category_fraction(cat)
                   for cat in Category}
            row["cycles"] = result.execution_cycles
            row["normalized_pct"] = (100.0 * result.execution_cycles
                                     / baseline)
            rows[label] = row
        out[name] = rows
    return out


# ---------------------------------------------------------------------------
# Figures 13-16: sensitivity sweeps (Em3d, I+D vs AURC)
# ---------------------------------------------------------------------------

def _sweep(app_name: str, nprocs: int, param_points: Iterable,
           make_params: Callable[[object], MachineParams],
           quick: bool,
           aurc_params: Optional[Callable] = None,
           runner: Optional[SweepRunner] = None) -> Dict[str, Dict]:
    """Run TM/I+D and AURC across a parameter sweep.

    Times are normalized to each protocol's value at the *default*
    parameters, matching the paper's presentation (figures 13-16
    normalize to the previous section's results).  The two baselines
    are identical across all four sweeps, so a shared runner (or disk
    cache) computes them once for figure 13 and serves figures 14-16
    from cache.
    """
    runner = _ensure_runner(runner)
    tm_config = ProtocolConfig.treadmarks("I+D")
    aurc_config = ProtocolConfig.aurc()
    default = MachineParams()
    points = list(param_points)

    requests = [
        _request(app_name, nprocs, tm_config, params=default, quick=quick),
        _request(app_name, nprocs, aurc_config, params=default, quick=quick),
    ]
    for point in points:
        params = make_params(point)
        aurc_point_params = (aurc_params(point) if aurc_params is not None
                             else params)
        requests.append(_request(app_name, nprocs, tm_config,
                                 params=params, quick=quick))
        requests.append(_request(app_name, nprocs, aurc_config,
                                 params=aurc_point_params, quick=quick))
    results = iter(runner.run_batch(requests))

    tm_base = next(results).execution_cycles
    aurc_base = next(results).execution_cycles
    curves: Dict[str, Dict] = {"TM/I+D": {}, "AURC": {}}
    for point in points:
        curves["TM/I+D"][point] = next(results).execution_cycles / tm_base
        curves["AURC"][point] = next(results).execution_cycles / aurc_base
    return curves


def fig13_messaging_overhead(
        app_name: str = "Em3d", nprocs: int = 16,
        microseconds: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
        quick: bool = False,
        aurc_full_update_overhead: bool = False,
        runner: Optional[SweepRunner] = None) -> Dict[str, Dict]:
    """Messaging-overhead sweep.  With ``aurc_full_update_overhead`` the
    AURC update messages pay the full per-message overhead instead of the
    default single cycle (the paper's pessimistic variant)."""
    def make(us: float) -> MachineParams:
        return MachineParams().with_messaging_overhead(us)

    def make_aurc(us: float) -> MachineParams:
        params = make(us)
        if aurc_full_update_overhead:
            params = params.with_aurc_full_update_overhead()
        return params

    return _sweep(app_name, nprocs, microseconds, make, quick,
                  aurc_params=make_aurc, runner=runner)


def fig14_network_bandwidth(
        app_name: str = "Em3d", nprocs: int = 16,
        bandwidths_mbs: Sequence[float] = (10, 25, 50, 100, 200),
        quick: bool = False,
        runner: Optional[SweepRunner] = None) -> Dict[str, Dict]:
    return _sweep(app_name, nprocs, bandwidths_mbs,
                  lambda mbs: MachineParams().with_network_bandwidth(mbs),
                  quick, runner=runner)


def fig15_memory_latency(
        app_name: str = "Em3d", nprocs: int = 16,
        latencies_ns: Sequence[float] = (40, 100, 150, 200),
        quick: bool = False,
        runner: Optional[SweepRunner] = None) -> Dict[str, Dict]:
    return _sweep(app_name, nprocs, latencies_ns,
                  lambda ns: MachineParams().with_memory_latency(ns),
                  quick, runner=runner)


def fig16_memory_bandwidth(
        app_name: str = "Em3d", nprocs: int = 16,
        bandwidths_mbs: Sequence[float] = (60, 80, 103, 150, 200),
        quick: bool = False,
        runner: Optional[SweepRunner] = None) -> Dict[str, Dict]:
    return _sweep(app_name, nprocs, bandwidths_mbs,
                  lambda mbs: MachineParams().with_memory_bandwidth(mbs),
                  quick, runner=runner)
