"""Experiment definitions: one function per paper table/figure.

Each function runs the needed simulations and returns plain data
structures (dicts keyed by application/mode/parameter) that the
benchmark harness and `repro.harness.figures` render.  DESIGN.md
section 4 maps experiment ids to these functions.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.apps.barnes import Barnes
from repro.apps.em3d import Em3d
from repro.apps.ocean import Ocean
from repro.apps.radix import Radix
from repro.apps.tsp import Tsp
from repro.apps.water import Water
from repro.dsm.overlap import ALL_MODES
from repro.harness.runner import ProtocolConfig, RunResult, run_app
from repro.hardware.params import MachineParams
from repro.stats.breakdown import Category

__all__ = [
    "APP_FACTORIES", "APP_ORDER", "MODE_ORDER", "scaled_app",
    "fig1_speedups", "fig2_breakdown", "fig_overlap_modes",
    "fig11_12_protocol_comparison", "fig13_messaging_overhead",
    "fig14_network_bandwidth", "fig15_memory_latency",
    "fig16_memory_bandwidth",
]

APP_FACTORIES: Dict[str, Callable[[int], object]] = {
    "TSP": Tsp,
    "Water": Water,
    "Radix": Radix,
    "Barnes": Barnes,
    "Em3d": Em3d,
    "Ocean": Ocean,
}

# The order the paper's figures list the applications.
APP_ORDER = ("TSP", "Water", "Radix", "Barnes", "Em3d", "Ocean")
MODE_ORDER = tuple(mode.name for mode in ALL_MODES)

# Problem-size knobs for quick (test) versus full (bench) runs.
_QUICK_SIZES = {
    "TSP": dict(n_cities=9, cutoff=3),
    "Water": dict(n_molecules=32, steps=1),
    "Radix": dict(n_keys=16384, radix_bits=5, key_bits=15),
    "Barnes": dict(n_bodies=64, steps=1),
    "Em3d": dict(n_nodes=2048, degree=4, iterations=2),
    "Ocean": dict(grid=34, iterations=3),
}


def scaled_app(name: str, nprocs: int, quick: bool = False):
    """Instantiate an application at full (default) or quick size."""
    factory = APP_FACTORIES[name]
    kwargs = _QUICK_SIZES[name] if quick else {}
    return factory(nprocs, **kwargs)


def _run(name: str, nprocs: int, config: ProtocolConfig,
         params: Optional[MachineParams] = None,
         quick: bool = False, verify: bool = False) -> RunResult:
    app = scaled_app(name, nprocs, quick)
    report_dir = os.environ.get("REPRO_REPORT_DIR", "")
    result = run_app(app, config, params=params, verify=verify,
                     metrics=bool(report_dir))
    if report_dir:
        _archive_report(report_dir, name, nprocs, config, result)
    return result


def _archive_report(report_dir: str, name: str, nprocs: int,
                    config: ProtocolConfig, result: RunResult) -> None:
    """Write one RunReport JSON per simulation into ``report_dir``."""
    from repro.stats.report import RunReport

    os.makedirs(report_dir, exist_ok=True)
    slug = config.label.replace("/", "-").replace("+", "")
    path = os.path.join(report_dir, f"{name}-{slug}-{nprocs}p.json")
    with open(path, "w") as fh:
        json.dump(RunReport(result).to_json(), fh)


# ---------------------------------------------------------------------------
# Figure 1: Base TreadMarks speedups, 1..16 processors
# ---------------------------------------------------------------------------

def fig1_speedups(apps: Sequence[str] = APP_ORDER,
                  proc_counts: Sequence[int] = (1, 2, 4, 8, 16),
                  quick: bool = False) -> Dict[str, Dict[int, float]]:
    """Speedup over the 1-processor run, per app and processor count."""
    out: Dict[str, Dict[int, float]] = {}
    config = ProtocolConfig.treadmarks("Base")
    for name in apps:
        serial = _run(name, 1, config, quick=quick)
        out[name] = {1: 1.0}
        for n in proc_counts:
            if n == 1:
                continue
            result = _run(name, n, config, quick=quick)
            out[name][n] = serial.execution_cycles / result.execution_cycles
    return out


# ---------------------------------------------------------------------------
# Figure 2: Base execution-time breakdown at 16 processors
# ---------------------------------------------------------------------------

def fig2_breakdown(apps: Sequence[str] = APP_ORDER, nprocs: int = 16,
                   quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Normalized category fractions plus the diff-time percentage."""
    out: Dict[str, Dict[str, float]] = {}
    config = ProtocolConfig.treadmarks("Base")
    for name in apps:
        result = _run(name, nprocs, config, quick=quick)
        row = {cat.value: result.category_fraction(cat)
               for cat in Category}
        row["diff_pct"] = 100.0 * result.diff_fraction()
        out[name] = row
    return out


# ---------------------------------------------------------------------------
# Figures 5-10: overlap modes per application
# ---------------------------------------------------------------------------

def fig_overlap_modes(app_name: str, nprocs: int = 16,
                      modes: Sequence[str] = MODE_ORDER,
                      quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Per overlap mode: normalized time (vs Base) and category split."""
    out: Dict[str, Dict[str, float]] = {}
    base_cycles = None
    for mode in modes:
        result = _run(app_name, nprocs, ProtocolConfig.treadmarks(mode),
                      quick=quick)
        if mode == "Base":
            base_cycles = result.execution_cycles
        row = {cat.value: result.category_fraction(cat)
               for cat in Category}
        row["cycles"] = result.execution_cycles
        row["normalized_pct"] = (100.0 * result.execution_cycles
                                 / (base_cycles or result.execution_cycles))
        row["diff_pct"] = 100.0 * result.diff_fraction()
        stats = result.protocol_stats
        row["prefetches"] = stats.prefetch.issued
        row["useless_pf_pct"] = 100.0 * stats.prefetch.useless_fraction()
        out[mode] = row
    return out


# ---------------------------------------------------------------------------
# Figures 11-12: overlapping TreadMarks (I+D) vs AURC vs AURC+P
# ---------------------------------------------------------------------------

def fig11_12_protocol_comparison(
        apps: Sequence[str] = APP_ORDER, nprocs: int = 16,
        quick: bool = False) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized running time (vs overlapping TreadMarks) per protocol."""
    configs = {
        "TM/I+D": ProtocolConfig.treadmarks("I+D"),
        "AURC": ProtocolConfig.aurc(),
        "AURC+P": ProtocolConfig.aurc(prefetch=True),
    }
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in apps:
        rows: Dict[str, Dict[str, float]] = {}
        baseline = None
        for label, config in configs.items():
            result = _run(name, nprocs, config, quick=quick)
            if baseline is None:
                baseline = result.execution_cycles
            row = {cat.value: result.category_fraction(cat)
                   for cat in Category}
            row["cycles"] = result.execution_cycles
            row["normalized_pct"] = (100.0 * result.execution_cycles
                                     / baseline)
            rows[label] = row
        out[name] = rows
    return out


# ---------------------------------------------------------------------------
# Figures 13-16: sensitivity sweeps (Em3d, I+D vs AURC)
# ---------------------------------------------------------------------------

def _sweep(app_name: str, nprocs: int, param_points: Iterable,
           make_params: Callable[[object], MachineParams],
           quick: bool,
           aurc_params: Optional[Callable] = None) -> Dict[str, Dict]:
    """Run TM/I+D and AURC across a parameter sweep.

    Times are normalized to each protocol's value at the *default*
    parameters, matching the paper's presentation (figures 13-16
    normalize to the previous section's results).
    """
    tm_config = ProtocolConfig.treadmarks("I+D")
    aurc_config = ProtocolConfig.aurc()
    default = MachineParams()
    tm_base = _run(app_name, nprocs, tm_config, params=default,
                   quick=quick).execution_cycles
    aurc_base = _run(app_name, nprocs, aurc_config, params=default,
                     quick=quick).execution_cycles
    curves: Dict[str, Dict] = {"TM/I+D": {}, "AURC": {}}
    for point in param_points:
        params = make_params(point)
        tm = _run(app_name, nprocs, tm_config, params=params, quick=quick)
        curves["TM/I+D"][point] = tm.execution_cycles / tm_base
        aurc_point_params = (aurc_params(point) if aurc_params is not None
                             else params)
        aurc = _run(app_name, nprocs, aurc_config,
                    params=aurc_point_params, quick=quick)
        curves["AURC"][point] = aurc.execution_cycles / aurc_base
    return curves


def fig13_messaging_overhead(
        app_name: str = "Em3d", nprocs: int = 16,
        microseconds: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
        quick: bool = False,
        aurc_full_update_overhead: bool = False) -> Dict[str, Dict]:
    """Messaging-overhead sweep.  With ``aurc_full_update_overhead`` the
    AURC update messages pay the full per-message overhead instead of the
    default single cycle (the paper's pessimistic variant)."""
    def make(us: float) -> MachineParams:
        return MachineParams().with_messaging_overhead(us)

    def make_aurc(us: float) -> MachineParams:
        params = make(us)
        if aurc_full_update_overhead:
            params = params.with_aurc_full_update_overhead()
        return params

    return _sweep(app_name, nprocs, microseconds, make, quick,
                  aurc_params=make_aurc)


def fig14_network_bandwidth(
        app_name: str = "Em3d", nprocs: int = 16,
        bandwidths_mbs: Sequence[float] = (10, 25, 50, 100, 200),
        quick: bool = False) -> Dict[str, Dict]:
    return _sweep(app_name, nprocs, bandwidths_mbs,
                  lambda mbs: MachineParams().with_network_bandwidth(mbs),
                  quick)


def fig15_memory_latency(
        app_name: str = "Em3d", nprocs: int = 16,
        latencies_ns: Sequence[float] = (40, 100, 150, 200),
        quick: bool = False) -> Dict[str, Dict]:
    return _sweep(app_name, nprocs, latencies_ns,
                  lambda ns: MachineParams().with_memory_latency(ns),
                  quick)


def fig16_memory_bandwidth(
        app_name: str = "Em3d", nprocs: int = 16,
        bandwidths_mbs: Sequence[float] = (60, 80, 103, 150, 200),
        quick: bool = False) -> Dict[str, Dict]:
    return _sweep(app_name, nprocs, bandwidths_mbs,
                  lambda mbs: MachineParams().with_memory_bandwidth(mbs),
                  quick)
