"""Parallel sweep execution with content-addressed result caching.

Every paper figure is an app x protocol x machine-parameter matrix of
*independent* simulations, yet the original harness ran them strictly
serially and figures 13-16 each re-simulated the same default-parameter
baselines.  This module supplies the missing execution layer:

* :class:`SimRequest` -- a picklable, declarative description of one
  simulation (application + size knobs, :class:`ProtocolConfig`,
  :class:`MachineParams`, verify flag).  Its :meth:`~SimRequest
  .fingerprint` is a content-addressed key over every input that can
  change the simulated outcome, plus a *code salt* hashed from the
  package sources so any code change invalidates old entries.
* :class:`ResultCache` -- an on-disk store (``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro``) of :meth:`RunResult.to_json` documents keyed by
  fingerprint.  Corrupt or foreign entries read as misses.
* :class:`SweepRunner` -- executes batches of requests, deduplicating
  identical requests, consulting an in-memory memo plus the optional
  disk cache, and fanning cache misses out over a
  ``ProcessPoolExecutor`` (``jobs=1`` stays fully in-process for
  debugging).  Results come back as :class:`SimResult` views that are
  drop-in replacements for live :class:`RunResult` objects.

Determinism contract: the simulation kernel is single-threaded and
seed-free, so a request's result is a pure function of its fingerprint
inputs.  Serial, parallel, and cached executions of the same request
must therefore be bit-identical; ``tests/harness/test_parallel.py``
enforces this cycle-for-cycle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsm.prefetch import PrefetchStats
from repro.harness import telemetry
from repro.harness.runner import ProtocolConfig, run_app
from repro.hardware.params import MachineParams
from repro.stats.breakdown import Category, TimeBreakdown

__all__ = [
    "SimRequest", "SimResult", "ResultCache", "SweepRunner",
    "SweepStats", "EvictionPolicy", "code_salt", "default_cache_dir",
    "execute_request", "CACHE_SCHEMA", "CACHE_INDEX_NAME",
]

CACHE_SCHEMA = "repro-cache/1"
CACHE_INDEX_NAME = "index.jsonl"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


_CODE_SALT: Optional[str] = None


def code_salt() -> str:
    """Digest of the package sources; part of every fingerprint.

    Hashing every ``.py`` file under ``repro`` means any change to the
    kernel, hardware models, protocols, applications, or harness
    invalidates previously cached results -- the cache can only ever
    return what the current code would recompute.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _CODE_SALT = digest.hexdigest()[:16]
    return _CODE_SALT


@dataclass(frozen=True)
class SimRequest:
    """Declarative description of one simulation run.

    ``size_kwargs`` is a sorted tuple of (name, value) pairs passed to
    the application factory, so requests hash and compare by value.
    ``params=None`` means the default :class:`MachineParams` (adjusted
    to ``nprocs``, exactly as ``run_app`` would).
    """

    app_name: str
    nprocs: int
    config: ProtocolConfig
    params: Optional[MachineParams] = None
    size_kwargs: Tuple[Tuple[str, object], ...] = ()
    verify: bool = False

    @staticmethod
    def for_app(app_name: str, nprocs: int, config: ProtocolConfig,
                params: Optional[MachineParams] = None,
                quick: bool = False, verify: bool = False) -> "SimRequest":
        """Build a request using the experiment layer's size registry."""
        from repro.harness.experiments import quick_sizes
        sizes = quick_sizes(app_name) if quick else {}
        return SimRequest(app_name=app_name, nprocs=nprocs, config=config,
                          params=params,
                          size_kwargs=tuple(sorted(sizes.items())),
                          verify=verify)

    @property
    def label(self) -> str:
        return f"{self.app_name}/{self.config.label}/{self.nprocs}p"

    def resolved_params(self) -> MachineParams:
        """The effective machine parameters (as ``run_app`` resolves them)."""
        params = self.params or MachineParams()
        if params.n_processors != self.nprocs:
            params = params.replace(n_processors=self.nprocs)
        return params

    def payload(self, salt: Optional[str] = None) -> dict:
        """The exact dict the fingerprint hashes (also archived in cache
        entries as provenance)."""
        mode = self.config.mode
        return {
            "schema": CACHE_SCHEMA,
            "salt": code_salt() if salt is None else salt,
            "app": self.app_name,
            "nprocs": self.nprocs,
            "sizes": dict(self.size_kwargs),
            "config": {
                "family": self.config.family,
                "mode": {
                    "name": mode.name,
                    "offload": mode.offload,
                    "hardware_diffs": mode.hardware_diffs,
                    "prefetch": mode.prefetch,
                },
                "prefetch": self.config.prefetch,
            },
            "params": dataclasses.asdict(self.resolved_params()),
            "verify": self.verify,
        }

    def fingerprint(self, salt: Optional[str] = None) -> str:
        blob = json.dumps(self.payload(salt), sort_keys=True,
                          separators=(",", ":"), default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()


def execute_request(request: SimRequest) -> dict:
    """Run one simulation in the current process; returns its JSON doc.

    This is the process-pool worker: it must stay module-level (picklable
    by reference) and return only plain data.  ``REPRO_REPORT_DIR``
    archiving (one RunReport per simulation) happens here, so reports are
    written exactly for the simulations that actually ran.
    """
    from repro.harness.experiments import APP_FACTORIES, archive_report
    app = APP_FACTORIES[request.app_name](request.nprocs,
                                          **dict(request.size_kwargs))
    report_dir = os.environ.get("REPRO_REPORT_DIR", "")
    start = time.perf_counter()
    result = run_app(app, request.config, params=request.params,
                     verify=request.verify, metrics=bool(report_dir))
    wall = time.perf_counter() - start
    if report_dir:
        archive_report(report_dir, request.app_name, request.nprocs,
                       request.config, result)
    doc = result.to_json()
    doc["wall_seconds"] = wall
    # Process-lifetime peak RSS, captured here so it survives caching.
    # Caveat: in a reused pool worker the high-water mark may belong to
    # an earlier, larger simulation run by the same process.
    try:
        import resource
        doc["peak_rss_kb"] = \
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):  # non-POSIX host: omit the field
        pass
    return doc


class _Namespace:
    """Attribute bag used to duck-type stats/network objects."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class SimResult:
    """A :class:`RunResult` look-alike reconstructed from its JSON doc.

    Exposes everything the figure functions and ``format_run`` consume
    (``execution_cycles``, ``merged_breakdown``, ``category_fraction``,
    ``diff_fraction``, ``protocol_stats`` with prefetch counters,
    ``network``), plus execution metadata: ``cached`` and
    ``wall_seconds`` (the *compute* wall time, preserved across cache
    hits).
    """

    def __init__(self, doc: dict, request: Optional[SimRequest] = None,
                 cached: bool = False):
        self.doc = doc
        self.request = request
        self.cached = cached
        self.app_name = doc["app"]
        self.protocol_label = doc["protocol"]
        self.n_procs = doc["n_procs"]
        self.execution_cycles = doc["execution_cycles"]
        self.finish_times = list(doc.get("finish_times", []))
        self.verified = bool(doc.get("verified", False))
        self.wall_seconds = float(doc.get("wall_seconds", 0.0))
        self.events_processed = int(doc.get("events_processed", 0))
        self.controller_diff_cycles = list(
            doc.get("controller_diff_cycles", []))

    @property
    def merged_breakdown(self) -> TimeBreakdown:
        merged = TimeBreakdown()
        data = self.doc.get("breakdown", {})
        for category in Category:
            merged.charge(category, data.get(category.value, 0.0))
        merged.charge_diff(data.get("diff", 0.0))
        return merged

    def category_fraction(self, category: Category) -> float:
        return self.merged_breakdown.fraction(category)

    def diff_fraction(self) -> float:
        return float(self.doc.get("diff_fraction", 0.0))

    @property
    def network(self):
        net = self.doc.get("network", {})
        mean = net.get("mean_latency", 0.0)
        return _Namespace(
            messages=net.get("messages", 0),
            bytes=net.get("bytes", 0),
            per_class_bytes=dict(net.get("per_class_bytes", {})),
            mean_latency=lambda: mean,
        )

    @property
    def protocol_stats(self):
        counters = dict(self.doc.get("protocol_counters", {}))
        prefetch = PrefetchStats(**self.doc.get("prefetch", {}))
        return _Namespace(prefetch=prefetch, **counters)

    def to_json(self) -> dict:
        return dict(self.doc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        origin = "cached" if self.cached else "computed"
        return (f"<SimResult {self.app_name}/{self.protocol_label}/"
                f"{self.n_procs}p {origin}>")


@dataclass(frozen=True)
class EvictionPolicy:
    """Size/age bounds for :meth:`ResultCache.evict`.

    ``max_bytes`` / ``max_entries`` are the post-eviction budgets
    (``None`` = unbounded); ``max_age_seconds`` additionally evicts
    entries idle longer than that regardless of budget.
    ``floor_seconds`` is the safety floor: an entry used more recently
    than this is *never* evicted, even if the byte budget cannot be met
    without it -- a cache under live serve traffic must not evict the
    entry a coalesced request is about to read.
    """

    max_bytes: Optional[int] = None
    max_entries: Optional[int] = None
    max_age_seconds: Optional[float] = None
    floor_seconds: float = 60.0

    @property
    def bounded(self) -> bool:
        return (self.max_bytes is not None
                or self.max_entries is not None
                or self.max_age_seconds is not None)


class ResultCache:
    """Content-addressed on-disk store of serialized run results.

    Entries are sharded by the first two key hex digits
    (``ab/abcdef....json``) and written via an ``mkstemp`` + atomic
    ``os.replace``, so concurrent writers -- pool workers, serve
    executor threads, or two figure invocations racing on the *same*
    fingerprint -- can never expose a torn entry.  Any unreadable,
    foreign-schema, or structurally incomplete entry is treated as a
    miss and recomputed.

    A JSONL journal (``index.jsonl``) records every put/touch/delete so
    the store's size and LRU order are known without walking millions
    of shard files; :meth:`evict` applies an :class:`EvictionPolicy`
    against it.  The journal is advisory: torn lines (a crash mid-
    append or mid-evict) are skipped on load, and any index/directory
    disagreement is repaired by :meth:`rebuild_index`, which rescans
    the shards.  Caches written by older versions -- flat
    ``<key>.json`` files at the root, no index -- keep hitting: reads
    fall back to the legacy path and migrate entries into their shard
    one hit at a time.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self._index_lock = threading.Lock()

    # -- paths -------------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def legacy_path_for(self, key: str) -> str:
        """Where the pre-sharding flat layout stored this key."""
        return os.path.join(self.root, f"{key}.json")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, CACHE_INDEX_NAME)

    # -- read/write --------------------------------------------------------

    @staticmethod
    def _load_entry(path: str) -> Optional[dict]:
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) \
                or entry.get("schema") != CACHE_SCHEMA:
            return None
        doc = entry.get("result")
        if not isinstance(doc, dict) or "execution_cycles" not in doc:
            return None
        return doc

    def get(self, key: str) -> Optional[dict]:
        path = self.path_for(key)
        doc = self._load_entry(path)
        if doc is not None:
            self._journal("touch", key)
            return doc
        # Legacy flat layout: serve the hit, then migrate the entry into
        # its shard so old caches re-shard progressively as they are
        # read rather than in one stop-the-world pass.
        legacy = self.legacy_path_for(key)
        doc = self._load_entry(legacy)
        if doc is None:
            return None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            os.replace(legacy, path)
            self._journal("put", key, nbytes=os.path.getsize(path))
        except OSError:
            # Migration is best-effort; the flat entry keeps serving.
            pass
        return doc

    def put(self, key: str, doc: dict,
            request_payload: Optional[dict] = None) -> None:
        entry = {"schema": CACHE_SCHEMA, "key": key, "result": doc}
        if request_payload is not None:
            entry["request"] = request_payload
        path = self.path_for(key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            # mkstemp gives every writer -- across processes *and*
            # threads -- a unique temp name; a shared pid-derived name
            # would let two threads finishing the same fingerprint
            # interleave writes and publish a torn entry.
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:16]}.", suffix=".tmp",
                dir=os.path.dirname(path))
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            nbytes = os.path.getsize(tmp)
            os.replace(tmp, path)
            tmp = None
            self._journal("put", key, nbytes=nbytes)
        except OSError:
            # A read-only or full cache directory must never fail a run.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def delete(self, key: str) -> bool:
        """Remove one entry (sharded or legacy); True if a file went."""
        removed = False
        for path in (self.path_for(key), self.legacy_path_for(key)):
            try:
                os.unlink(path)
                removed = True
            except OSError:
                pass
        if removed:
            self._journal("del", key)
        return removed

    # -- the index journal -------------------------------------------------

    def _journal(self, op: str, key: str,
                 nbytes: Optional[int] = None) -> None:
        record = {"op": op, "key": key, "ts": time.time()}
        if nbytes is not None:
            record["bytes"] = nbytes
        line = json.dumps(record, separators=(",", ":")) + "\n"
        try:
            with self._index_lock:
                with open(self.index_path, "a") as fh:
                    fh.write(line)
        except OSError:
            pass

    def load_index(self) -> Dict[str, Tuple[int, float]]:
        """Replay the journal into ``{key: (bytes, last_used_ts)}``.

        Torn lines (crash mid-append) and unknown ops are skipped; a
        missing journal on a non-empty store means a pre-index cache,
        which :meth:`rebuild_index` reconstructs from the shards.
        """
        entries: Dict[str, Tuple[int, float]] = {}
        try:
            fh = open(self.index_path)
        except OSError:
            return self.rebuild_index() if self._has_entries() else {}
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a crash
                if not isinstance(record, dict):
                    continue
                op = record.get("op")
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                ts = record.get("ts", 0.0)
                if not isinstance(ts, (int, float)):
                    ts = 0.0
                if op == "put":
                    nbytes = record.get("bytes", 0)
                    entries[key] = (
                        nbytes if isinstance(nbytes, int) else 0,
                        float(ts))
                elif op == "touch" and key in entries:
                    entries[key] = (entries[key][0], float(ts))
                elif op == "del":
                    entries.pop(key, None)
        return entries

    def _has_entries(self) -> bool:
        try:
            names = os.listdir(self.root)
        except OSError:
            return False
        for name in names:
            if name.endswith(".json") or (
                    len(name) == 2
                    and os.path.isdir(os.path.join(self.root, name))):
                return True
        return False

    def _scan_files(self):
        """Yield ``(key, path)`` for every entry file, both layouts."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in sorted(names):
            path = os.path.join(self.root, name)
            if name.endswith(".json") and os.path.isfile(path):
                yield name[:-len(".json")], path
            elif len(name) == 2 and os.path.isdir(path):
                try:
                    shard = sorted(os.listdir(path))
                except OSError:
                    continue
                for entry in shard:
                    if entry.endswith(".json"):
                        yield entry[:-len(".json")], \
                            os.path.join(path, entry)

    def rebuild_index(self) -> Dict[str, Tuple[int, float]]:
        """Rescan the shards and rewrite the journal atomically.

        The recovery path for pre-index caches and for any
        index/directory disagreement (e.g. a crash between an eviction
        unlink and its ``del`` record): directory contents win, with
        file mtimes as last-used stamps.
        """
        entries: Dict[str, Tuple[int, float]] = {}
        for key, path in self._scan_files():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries[key] = (stat.st_size, stat.st_mtime)
        self._rewrite_index(entries)
        return entries

    def _rewrite_index(self,
                       entries: Dict[str, Tuple[int, float]]) -> None:
        lines = [json.dumps({"op": "put", "key": key, "bytes": nbytes,
                             "ts": ts}, separators=(",", ":"))
                 for key, (nbytes, ts) in entries.items()]
        body = "\n".join(lines) + ("\n" if lines else "")
        try:
            with self._index_lock:
                os.makedirs(self.root, exist_ok=True)
                fd, tmp = tempfile.mkstemp(prefix=".index.",
                                           suffix=".tmp", dir=self.root)
                with os.fdopen(fd, "w") as fh:
                    fh.write(body)
                os.replace(tmp, self.index_path)
        except OSError:
            pass

    # -- eviction ----------------------------------------------------------

    def evict(self, policy: EvictionPolicy,
              now: Optional[float] = None) -> dict:
        """Apply ``policy``, oldest-idle entries first; returns stats.

        Entries idle less than ``policy.floor_seconds`` are never
        removed, so the returned ``live_bytes`` may exceed
        ``max_bytes`` when the whole overshoot is recent -- the stats
        report it rather than violating the floor.
        """
        stats = {"scanned": 0, "evicted": 0, "evicted_bytes": 0,
                 "live": 0, "live_bytes": 0}
        if not policy.bounded:
            return stats
        now = time.time() if now is None else now
        entries = self.load_index()
        # An index that disagrees with the directory (crash between an
        # unlink and its journal record) self-heals here: missing files
        # drop out before any budget math.
        verified: Dict[str, Tuple[int, float]] = {}
        dirty = False
        for key, (nbytes, ts) in entries.items():
            if os.path.exists(self.path_for(key)) \
                    or os.path.exists(self.legacy_path_for(key)):
                verified[key] = (nbytes, ts)
            else:
                dirty = True
        entries = verified
        stats["scanned"] = len(entries)
        by_idle = sorted(entries.items(), key=lambda item: item[1][1])
        total_bytes = sum(nbytes for nbytes, _ in entries.values())
        total = len(entries)
        for key, (nbytes, ts) in by_idle:
            age = now - ts
            if age < policy.floor_seconds:
                continue
            over_bytes = (policy.max_bytes is not None
                          and total_bytes > policy.max_bytes)
            over_count = (policy.max_entries is not None
                          and total > policy.max_entries)
            too_old = (policy.max_age_seconds is not None
                       and age > policy.max_age_seconds)
            if not (over_bytes or over_count or too_old):
                if policy.max_age_seconds is None:
                    break  # sorted by idle time: the rest is newer
                continue
            self.delete(key)
            entries.pop(key, None)
            dirty = True
            total_bytes -= nbytes
            total -= 1
            stats["evicted"] += 1
            stats["evicted_bytes"] += nbytes
        stats["live"] = total
        stats["live_bytes"] = total_bytes
        if dirty:
            # Compact: replay-from-journal and directory now agree.
            self._rewrite_index(entries)
        return stats


@dataclass
class SweepStats:
    """Cumulative hit/miss and wall-time counters for one runner."""

    hits: int = 0            # served from memo or disk (incl. in-batch dups)
    misses: int = 0          # simulations actually executed
    compute_seconds: float = 0.0   # total simulate wall across misses
    batch_seconds: float = 0.0     # wall spent inside run_batch calls
    per_run: List[dict] = field(default_factory=list)

    def note_run(self, request: SimRequest, cached: bool,
                 wall_seconds: float) -> None:
        self.per_run.append({"run": request.label, "cached": cached,
                             "wall_seconds": wall_seconds})

    def as_metadata(self) -> dict:
        """Summary dict for RunReport metadata / CLI footers."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "compute_seconds": round(self.compute_seconds, 3),
            "batch_seconds": round(self.batch_seconds, 3),
        }

    def summary(self) -> str:
        return (f"{self.hits} cache hits, {self.misses} misses, "
                f"{self.compute_seconds:.2f}s simulated compute in "
                f"{self.batch_seconds:.2f}s wall")


class SweepRunner:
    """Executes batches of :class:`SimRequest` with memoized results.

    ``jobs=1`` (the default for library callers) runs every miss
    in-process and serially -- the debugging-friendly mode.  ``jobs=N``
    fans misses out over a ``ProcessPoolExecutor``; ``jobs=None`` means
    ``os.cpu_count()``.  ``cache`` is an optional :class:`ResultCache`;
    without one the runner still deduplicates within its own lifetime
    via the in-memory memo (so e.g. figure 13's sweep point that equals
    the default parameters is simulated once).
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ResultCache] = None,
                 salt: Optional[str] = None,
                 bus: Optional[telemetry.TelemetryBus] = None):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.salt = code_salt() if salt is None else salt
        self.stats = SweepStats()
        self.bus = bus if bus is not None else telemetry.bus()
        self._memo: Dict[str, dict] = {}

    # -- execution ---------------------------------------------------------

    def run(self, request: SimRequest) -> SimResult:
        return self.run_batch([request])[0]

    def run_batch(self, requests: Sequence[SimRequest]) -> List[SimResult]:
        """Execute ``requests``; returns results in request order.

        Identical requests (same fingerprint) are simulated at most
        once.  Results for executed requests are committed to the disk
        cache (when attached) before returning.
        """
        batch_start = time.perf_counter()
        keys = [request.fingerprint(self.salt) for request in requests]
        plan: List[Tuple[str, str]] = []     # (kind, key) per occurrence
        to_run: Dict[str, SimRequest] = {}   # insertion-ordered
        for key, request in zip(keys, requests):
            doc = self._memo.get(key)
            if doc is None and key not in to_run and self.cache is not None:
                doc = self.cache.get(key)
                if doc is not None:
                    self._memo[key] = doc
            if doc is not None:
                plan.append(("hit", key))
            elif key in to_run:
                plan.append(("dup", key))
            else:
                to_run[key] = request
                plan.append(("run", key))
        bus = self.bus
        if bus.active:
            bus.publish("sweep_started", jobs=len(requests),
                        unique=len(to_run),
                        cached=len(requests) - len(to_run),
                        workers=min(self.jobs, max(1, len(to_run))))
            # Same-batch duplicates ("dup") are not in the memo yet --
            # their event is published after compute fills it in.
            for (kind, key), request in zip(plan, requests):
                if kind == "hit":
                    bus.publish(
                        "job_cached", run=request.label, source="cache",
                        wall_seconds=self._memo[key].get(
                            "wall_seconds", 0.0))
        compute = self._execute(to_run)
        if bus.active:
            for (kind, key), request in zip(plan, requests):
                if kind == "dup":
                    bus.publish(
                        "job_cached", run=request.label, source="memo",
                        wall_seconds=self._memo[key].get(
                            "wall_seconds", 0.0))
        elapsed = time.perf_counter() - batch_start
        self.stats.batch_seconds += elapsed

        results: List[SimResult] = []
        for (kind, key), request in zip(plan, requests):
            cached = kind != "run"
            result = SimResult(self._memo[key], request=request,
                               cached=cached)
            if cached:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                self.stats.compute_seconds += result.wall_seconds
            self.stats.note_run(request, cached, result.wall_seconds)
            results.append(result)
        if bus.active:
            hits = len(requests) - len(to_run)
            workers = min(self.jobs, max(1, len(to_run)))
            bus.publish(
                "sweep_finished", jobs=len(requests), hits=hits,
                misses=len(to_run),
                hit_rate=hits / len(requests) if requests else 0.0,
                batch_seconds=elapsed, compute_seconds=compute,
                worker_utilization=(compute / (workers * elapsed)
                                    if elapsed > 0 else None))
        return results

    def _execute(self, to_run: Dict[str, SimRequest]) -> float:
        """Run the cache misses; returns their summed compute seconds.

        Completions stream to the telemetry bus as they happen (the
        pooled path consumes futures with ``as_completed``), so a live
        watcher sees per-job progress rather than one burst at the end
        of the batch.  Result order -- and therefore every cached or
        returned document -- is unaffected.
        """
        if not to_run:
            return 0.0
        items = list(to_run.items())
        bus = self.bus
        docs: Dict[str, dict] = {}
        failure: Optional[BaseException] = None
        if self.jobs > 1 and len(items) > 1:
            workers = min(self.jobs, len(items))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for key, request in items:
                    if bus.active:
                        bus.publish("job_queued", run=request.label)
                    futures[pool.submit(execute_request, request)] = \
                        (key, request)
                for future in as_completed(futures):
                    key, request = futures[future]
                    try:
                        doc = future.result()
                    except BaseException as exc:
                        if bus.active:
                            bus.publish("job_failed", run=request.label,
                                        error=f"{type(exc).__name__}: "
                                              f"{exc}")
                        if failure is None:
                            failure = exc
                        continue
                    docs[key] = doc
                    if bus.active:
                        self._publish_finished(request, doc)
        else:
            for key, request in items:
                if bus.active:
                    bus.publish("job_started", run=request.label)
                try:
                    doc = execute_request(request)
                except BaseException as exc:
                    if bus.active:
                        bus.publish("job_failed", run=request.label,
                                    error=f"{type(exc).__name__}: {exc}")
                    raise
                docs[key] = doc
                if bus.active:
                    self._publish_finished(request, doc)
        if failure is not None:
            raise failure
        compute = 0.0
        for key, request in items:
            doc = docs[key]
            compute += doc.get("wall_seconds", 0.0)
            self._memo[key] = doc
            if self.cache is not None:
                self.cache.put(key, doc,
                               request_payload=request.payload(self.salt))
        return compute

    def _publish_finished(self, request: SimRequest, doc: dict) -> None:
        wall = doc.get("wall_seconds", 0.0)
        events = doc.get("events_processed", 0)
        self.bus.publish(
            "job_finished", run=request.label, wall_seconds=wall,
            execution_cycles=doc.get("execution_cycles"),
            events_processed=events,
            events_per_second=events / wall if wall else 0.0)
