"""Chaos sweeps: run configurations under seeded faults and check that
they survive with the same final shared memory as a fault-free run.

For every (app, protocol) cell the sweep first runs a fault-free
baseline with a final-memory snapshot, then one faulted run per seed
(a fresh :class:`~repro.faults.FaultPlan` each time -- plans are
single-use) and reports, per run:

* **survival** -- the simulation terminated and the app's own
  verification epilogue passed (a hang shows up as the kernel's
  "ran out of events" error, which the sweep records as a failure);
* **memory match** -- the faulted run's final shared-memory snapshot
  against the baseline's: ``exact`` for bitwise identity, ``close``
  when equal within the applications' verification tolerance (1e-6
  relative -- lock-ordered floating-point accumulation, e.g. Water's
  force reduction, legitimately reorders under faults), or ``diverged``;
* **overhead** -- faulted execution cycles over baseline cycles;
* **violations** -- the coherence-audit sanitizer's finding count:
  every faulted run carries a :class:`~repro.dsm.audit
  .CoherenceAuditor`, turning PR 5's "final memory identical" into
  "every intermediate coherence transition legal".  Any violation
  fails the sweep.

Chaos runs never touch the result cache: a faulted run must not be
served from -- or poison -- the cache entry of its fault-free twin.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.faults import FaultPlan, FaultSpec
from repro.harness import telemetry
from repro.harness.bench import config_for
from repro.harness.experiments import scaled_app
from repro.harness.runner import run_app

__all__ = ["CHAOS_SCHEMA", "DEFAULT_APPS", "DEFAULT_PROTOCOLS",
           "memory_match", "run_chaos"]

CHAOS_SCHEMA = "repro-chaos/1"

DEFAULT_APPS = ("Em3d", "Water")
DEFAULT_PROTOCOLS = ("Base", "I+P+D")

# Matches the applications' own verification tolerance (see
# repro.apps.water): lock-ordered FP accumulation is timing-dependent.
MEMORY_RTOL = 1e-6


def memory_match(baseline, faulted) -> str:
    """Classify a faulted snapshot against the baseline's."""
    if baseline is None or faulted is None:
        return "missing"
    if baseline.shape == faulted.shape \
            and np.array_equal(baseline, faulted):
        return "exact"
    if np.allclose(baseline, faulted, rtol=MEMORY_RTOL, atol=1e-12):
        return "close"
    return "diverged"


def run_chaos(seeds: int = 3,
              apps: Sequence[str] = DEFAULT_APPS,
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              procs: int = 4,
              quick: bool = True,
              spec: Optional[FaultSpec] = None,
              echo=print) -> dict:
    """Sweep ``seeds`` fault seeds over apps x protocols; returns the
    ``repro-chaos/1`` report document."""
    spec = spec if spec is not None else FaultSpec.chaos()
    seed_values = list(range(1, seeds + 1))
    telemetry.publish("chaos_started", apps=list(apps),
                      protocols=list(protocols), seeds=seed_values,
                      n_procs=procs, quick=quick)
    rows = []
    for app_name in apps:
        for protocol in protocols:
            config = config_for(protocol)
            baseline = run_app(
                scaled_app(app_name, procs, quick=quick), config,
                snapshot_memory=True)
            telemetry.publish(
                "chaos_cell", app=app_name,
                protocol=baseline.protocol_label, n_procs=procs,
                baseline_cycles=baseline.execution_cycles)
            if echo is not None:
                echo(f"  {app_name:8s} {baseline.protocol_label:8s} "
                     f"baseline {baseline.execution_cycles / 1e6:8.2f} "
                     f"Mcycles")
            for seed in seed_values:
                plan = FaultPlan(seed=seed, spec=spec)
                row = {
                    "app": app_name,
                    "protocol": baseline.protocol_label,
                    "n_procs": procs,
                    "seed": seed,
                    "survived": False,
                    "verified": False,
                    "memory": "missing",
                    "overhead": None,
                    "error": None,
                    "faults": None,
                    "violations": None,
                }
                try:
                    result = run_app(
                        scaled_app(app_name, procs, quick=quick),
                        config, faults=plan, snapshot_memory=True,
                        audit=True)
                except Exception as exc:  # hang, protocol error, ...
                    row["error"] = f"{type(exc).__name__}: {exc}"
                else:
                    row["survived"] = True
                    row["verified"] = result.verified
                    row["memory"] = memory_match(baseline.final_memory,
                                                 result.final_memory)
                    row["overhead"] = (result.execution_cycles
                                       / baseline.execution_cycles - 1.0)
                    row["faults"] = result.fault_stats
                    row["violations"] = result.audit.violation_count
                rows.append(row)
                telemetry.publish(
                    "chaos_run", app=app_name, protocol=row["protocol"],
                    seed=seed, survived=row["survived"],
                    verified=row["verified"], memory=row["memory"],
                    overhead=row["overhead"], error=row["error"])
                if echo is not None:
                    if row["survived"]:
                        injected = sum(
                            row["faults"]["injected"].values())
                        echo(f"    seed {seed}: survived, "
                             f"memory {row['memory']}, "
                             f"+{100 * row['overhead']:.1f}% cycles, "
                             f"{injected} faults injected, "
                             f"{row['faults']['retransmits']} "
                             f"retransmits, "
                             f"{row['violations']} audit violations")
                    else:
                        echo(f"    seed {seed}: FAILED -- "
                             f"{row['error']}")
    survived = sum(1 for row in rows if row["survived"])
    matched = sum(1 for row in rows
                  if row["memory"] in ("exact", "close")
                  and row["verified"])
    clean = sum(1 for row in rows if row["violations"] == 0)
    report = {
        "schema": CHAOS_SCHEMA,
        "spec": spec.to_dict(),
        "seeds": seed_values,
        "rows": rows,
        "total": len(rows),
        "survived": survived,
        "matched": matched,
        "clean": clean,
        "ok": (survived == len(rows) and matched == len(rows)
               and clean == len(rows)),
    }
    telemetry.publish("chaos_finished", total=len(rows),
                      survived=survived, matched=matched,
                      clean=clean, ok=report["ok"])
    return report
