"""Fleet telemetry: a process-local event bus for the harness layers.

The sweep runner, the chaos harness, and ``run_app`` itself publish
structured progress events (job queued / started / cache-hit / finished
/ failed, per-job wall seconds, simulated cycles, events-per-second,
worker utilization, cache hit-rate) to a :class:`TelemetryBus`.
Consumers subscribe callbacks:

* :class:`SweepLogWriter` appends every event to a JSONL *sweep log*
  (``repro-sweep-log/1``): an append-only, replayable record of a whole
  sweep or chaos campaign.  The file opens with a header record and
  closes with a ``_meta`` record -- written even on abnormal
  termination, so an interrupted campaign still leaves a well-formed
  log behind.
* :class:`LiveRenderer` turns the same events into one-line progress
  output (``repro figure ... --watch``), and ``repro watch FILE``
  replays or tails a sweep log through it after the fact.

Cost contract: publishing to a bus with no subscribers is a single
truthiness check, so instrumented code paths pay nothing when nobody is
watching.  The bus is process-local by design -- pool workers run with
an empty bus and all telemetry is derived in the coordinating process
from job completions, keeping the simulation kernel byte-identical
with telemetry on or off.  :func:`measure_telemetry_tax` keeps that
claim honest by timing the quick benchmark matrix with the full
consumer stack attached vs. detached.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "SWEEP_LOG_SCHEMA", "TelemetryBus", "SweepLogWriter", "LiveRenderer",
    "AsyncBridge", "bus", "publish", "read_sweep_log",
    "sweep_log_duration", "sweep_log_summary", "measure_telemetry_tax",
]

SWEEP_LOG_SCHEMA = "repro-sweep-log/1"

Subscriber = Callable[[Dict[str, Any]], None]


class TelemetryBus:
    """Synchronous fan-out of event dicts to subscribed callbacks.

    Events are plain dicts with a ``kind`` key plus whatever fields the
    publisher attaches; ``ts`` (host epoch seconds, for display) and
    ``mono`` (``time.perf_counter()`` seconds, for duration math --
    immune to wall-clock steps from NTP or a suspended laptop) are
    stamped here so every subscriber sees the same timestamps.  A
    subscriber exception
    propagates to the publisher: telemetry consumers are part of the
    harness, not untrusted plugins, and a silently broken log writer
    would defeat the whole point of the layer.
    """

    def __init__(self):
        self._subscribers: List[Subscriber] = []

    @property
    def active(self) -> bool:
        return bool(self._subscribers)

    def subscribe(self, callback: Subscriber) -> Subscriber:
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def publish(self, kind: str, **fields: Any) -> None:
        if not self._subscribers:
            return
        event = {"kind": kind, "ts": time.time(),
                 "mono": time.perf_counter()}
        event.update(fields)
        for callback in list(self._subscribers):
            callback(event)


# The process-wide default bus.  Publishers (SweepRunner, run_app,
# run_chaos) default to this one; CLI commands attach their consumers
# here.  Pool workers inherit a fresh, subscriber-less bus.
_BUS = TelemetryBus()


def bus() -> TelemetryBus:
    """The process-wide default telemetry bus."""
    return _BUS


def publish(kind: str, **fields: Any) -> None:
    """Publish to the default bus (no-op without subscribers)."""
    _BUS.publish(kind, **fields)


class AsyncBridge:
    """Bridge bus events into ``asyncio`` queues for streaming servers.

    The bus is synchronous and may be published from any thread (the
    serve job manager publishes from executor callbacks); an event-loop
    consumer cannot subscribe a plain callback without racing the loop.
    The bridge is that adapter: it subscribes itself to a
    :class:`TelemetryBus`, hops every event onto the owning loop with
    ``call_soon_threadsafe``, and fans it out to per-consumer
    ``asyncio.Queue`` instances (one per open event stream).

    Queues are bounded; a consumer that stops draining (a stalled HTTP
    client) loses its *oldest* events rather than blocking the bus or
    growing without bound -- the stream stays live, which is what a
    progress watcher wants.  ``dropped`` counts those losses.
    """

    def __init__(self, loop, bus: Optional[TelemetryBus] = None,
                 maxsize: int = 1024):
        import asyncio

        self._asyncio = asyncio
        self._loop = loop
        self._bus = bus if bus is not None else _BUS
        self._queues: List = []
        self._maxsize = maxsize
        self.dropped = 0
        self.closed = False
        self._bus.subscribe(self)

    def __call__(self, event: Dict[str, Any]) -> None:
        if self.closed:
            return
        try:
            self._loop.call_soon_threadsafe(self._dispatch, event)
        except RuntimeError:
            pass  # loop already closed mid-shutdown

    def _dispatch(self, event: Dict[str, Any]) -> None:
        for queue in list(self._queues):
            if queue.full():
                try:
                    queue.get_nowait()
                    self.dropped += 1
                except self._asyncio.QueueEmpty:  # pragma: no cover
                    pass
            queue.put_nowait(event)

    def stream(self):
        """A new bounded queue receiving every subsequent bus event.

        Call from the owning loop; detach with :meth:`unstream` when
        the consumer disconnects.
        """
        queue = self._asyncio.Queue(maxsize=self._maxsize)
        self._queues.append(queue)
        return queue

    def unstream(self, queue) -> None:
        try:
            self._queues.remove(queue)
        except ValueError:
            pass

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._bus.unsubscribe(self)
            self._queues.clear()


class SweepLogWriter:
    """Append-only JSONL sweep log (``repro-sweep-log/1``).

    One JSON object per line: a header record first (schema, argv
    context), then every bus event in arrival order, then a ``_meta``
    trailer with the event count and a closed/aborted marker.  Lines are
    flushed as written so ``repro watch --follow`` can tail a live
    sweep.  Use as a context manager -- ``__exit__`` writes the trailer
    with ``aborted`` set when the sweep died on an exception, so even a
    crashed campaign leaves a well-formed, replayable log.
    """

    def __init__(self, path: str, bus: Optional[TelemetryBus] = None,
                 context: Optional[dict] = None):
        self.path = path
        self.events_written = 0
        self.closed = False
        self._bus = bus if bus is not None else _BUS
        self._fh = open(path, "w")
        self._mono_open = time.perf_counter()
        header = {"schema": SWEEP_LOG_SCHEMA, "kind": "_open",
                  "ts": time.time(), "mono": self._mono_open}
        if context:
            header.update(context)
        self._write(header)
        self._bus.subscribe(self)

    def __call__(self, event: Dict[str, Any]) -> None:
        if self.closed:
            return
        self._write(event)
        self.events_written += 1

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, default=repr) + "\n")
        self._fh.flush()

    def close(self, aborted: Optional[str] = None) -> None:
        if self.closed:
            return
        self.closed = True
        self._bus.unsubscribe(self)
        mono = time.perf_counter()
        trailer = {"kind": "_meta", "ts": time.time(), "mono": mono,
                   "duration_seconds": mono - self._mono_open,
                   "events": self.events_written}
        if aborted is not None:
            trailer["aborted"] = aborted
        self._write(trailer)
        self._fh.close()

    def __enter__(self) -> "SweepLogWriter":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.close(aborted=f"{exc_type.__name__}: {exc}"
                   if exc_type is not None else None)


def read_sweep_log(path: str) -> List[Dict[str, Any]]:
    """Parse a sweep log back into its records (header and trailer
    included).  Unparseable lines -- a torn final line from a killed
    process -- are skipped rather than fatal."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def sweep_log_duration(records: List[Dict[str, Any]]) -> float:
    """Elapsed seconds a sweep log covers, from the monotonic stamps.

    Prefers the ``mono`` (``time.perf_counter()``) span between the
    first and last stamped records; epoch ``ts`` is display-only and
    steps with the host clock, so it is used only as a fallback for
    logs written before ``mono`` existed.
    """
    for key in ("mono", "ts"):
        stamps = [record[key] for record in records
                  if isinstance(record.get(key), (int, float))]
        if len(stamps) >= 2:
            return max(0.0, stamps[-1] - stamps[0])
    return 0.0


def sweep_log_summary(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Roll a sweep log up into totals (the ``repro watch`` footer)."""
    counts: Dict[str, int] = {}
    compute_seconds = 0.0
    aborted = None
    closed = False
    for record in records:
        kind = record.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "job_finished":
            compute_seconds += record.get("wall_seconds", 0.0) or 0.0
        elif kind == "_meta":
            closed = True
            aborted = record.get("aborted")
    hits = counts.get("job_cached", 0)
    misses = counts.get("job_finished", 0)
    total = hits + misses
    return {
        "records": len(records),
        "kinds": dict(sorted(counts.items())),
        "jobs": total,
        "cache_hits": hits,
        "cache_hit_rate": hits / total if total else 0.0,
        "compute_seconds": compute_seconds,
        "duration_seconds": sweep_log_duration(records),
        "failures": counts.get("job_failed", 0),
        "closed": closed,
        "aborted": aborted,
    }


class LiveRenderer:
    """Render bus events as one-line progress output.

    Subscribes like any other consumer; also reused by ``repro watch``
    to replay a recorded sweep log.  Output goes through ``echo``
    (default ``print``) so tests can capture it.
    """

    def __init__(self, echo: Callable[[str], None] = print):
        self.echo = echo
        self._total: Optional[int] = None
        self._done = 0
        self._hits = 0

    def _progress(self) -> str:
        if self._total:
            return f"{self._done + self._hits}/{self._total}"
        return str(self._done + self._hits)

    def __call__(self, event: Dict[str, Any]) -> None:
        kind = event.get("kind", "?")
        if kind == "sweep_started":
            self._total = event.get("jobs")
            self._done = 0
            self._hits = 0
            self.echo(f"[watch] sweep started: {event.get('jobs', '?')} "
                      f"jobs ({event.get('unique', '?')} unique, "
                      f"jobs={event.get('workers', '?')})")
        elif kind == "job_queued":
            self.echo(f"[watch] queued   {event.get('run', '?')}")
        elif kind == "job_started":
            self.echo(f"[watch] started  {event.get('run', '?')}")
        elif kind == "job_cached":
            self._hits += 1
            self.echo(f"[watch] cache    {event.get('run', '?')} "
                      f"[{self._progress()}]")
        elif kind == "job_finished":
            self._done += 1
            rate = event.get("events_per_second", 0.0) or 0.0
            self.echo(f"[watch] finished {event.get('run', '?')} "
                      f"{event.get('wall_seconds', 0.0):.3f}s "
                      f"{event.get('events_processed', 0)} ev "
                      f"({rate:,.0f} ev/s) [{self._progress()}]")
        elif kind == "job_failed":
            self._done += 1
            self.echo(f"[watch] FAILED   {event.get('run', '?')}: "
                      f"{event.get('error', '?')} [{self._progress()}]")
        elif kind == "sweep_finished":
            util = event.get("worker_utilization")
            util_s = f", worker util {100 * util:.0f}%" \
                if util is not None else ""
            self.echo(f"[watch] sweep finished: "
                      f"{event.get('misses', 0)} simulated, "
                      f"{event.get('hits', 0)} cache hits "
                      f"(hit rate {100 * event.get('hit_rate', 0.0):.0f}%)"
                      f"{util_s}, "
                      f"{event.get('batch_seconds', 0.0):.2f}s wall")
        elif kind == "run_started":
            self.echo(f"[watch] run      {event.get('app', '?')}/"
                      f"{event.get('protocol', '?')}/"
                      f"{event.get('n_procs', '?')}p started")
        elif kind == "run_finished":
            self.echo(f"[watch] run      {event.get('app', '?')}/"
                      f"{event.get('protocol', '?')} done: "
                      f"{event.get('execution_cycles', 0) / 1e6:.2f} "
                      f"Mcycles in {event.get('wall_seconds', 0.0):.3f}s")
        elif kind == "chaos_cell":
            self.echo(f"[watch] chaos    {event.get('app', '?')}/"
                      f"{event.get('protocol', '?')} baseline "
                      f"{event.get('baseline_cycles', 0) / 1e6:.2f} Mcycles")
        elif kind == "chaos_run":
            verdict = "survived" if event.get("survived") else "FAILED"
            overhead = event.get("overhead")
            extra = f" +{100 * overhead:.1f}%" if overhead is not None \
                else ""
            self.echo(f"[watch] chaos    {event.get('app', '?')}/"
                      f"{event.get('protocol', '?')} seed "
                      f"{event.get('seed', '?')}: {verdict}, memory "
                      f"{event.get('memory', '?')}{extra}")
        elif kind == "telemetry_tax":
            self.echo(f"[watch] telemetry tax: "
                      f"{100 * event.get('overhead', 0.0):+.2f}% "
                      f"(on {event.get('on_seconds', 0.0):.3f}s vs off "
                      f"{event.get('off_seconds', 0.0):.3f}s, best of "
                      f"{event.get('repeats', '?')})")

    def replay(self, records: List[Dict[str, Any]]) -> None:
        for record in records:
            if record.get("kind") in ("_open", "_meta"):
                continue
            self(record)


def measure_telemetry_tax(procs: int = 4, repeats: int = 3,
                          log_path: Optional[str] = None) -> Dict[str, Any]:
    """Time the quick benchmark matrix with telemetry on vs. off.

    Self-accounting for the observability layer: both arms run the same
    uncached serial matrix through the sweep runner; the "on" arm
    additionally carries a sweep-log writer (to ``log_path`` or a
    throwaway file) and a live renderer swallowing its output -- the
    full consumer stack a watched sweep pays for.  Best-of-``repeats``
    wall seconds per arm; the returned record (also published as a
    ``telemetry_tax`` event, so it lands in the sweep log itself) is
    the tracked overhead number CI bounds.
    """
    import os
    import tempfile

    from repro.harness.bench import run_matrix
    from repro.harness.parallel import SweepRunner

    def one_matrix() -> float:
        runner = SweepRunner(jobs=1, cache=None)
        start = time.perf_counter()
        run_matrix(procs=procs, quick=True, runner=runner, echo=None)
        return time.perf_counter() - start

    # Measure both arms against a quiesced bus: any consumers the caller
    # already attached (an outer sweep log, a --watch renderer) would
    # otherwise bill their own cost to the "off" arm too.
    outer_subscribers = list(_BUS._subscribers)
    _BUS._subscribers.clear()
    cleanup = None
    if log_path is None:
        fd, log_path = tempfile.mkstemp(suffix=".jsonl", prefix="tax-")
        os.close(fd)
        cleanup = log_path
    try:
        best_off = min(one_matrix() for _ in range(max(1, repeats)))
        best_on = None
        for _ in range(max(1, repeats)):
            renderer = LiveRenderer(echo=lambda _line: None)
            _BUS.subscribe(renderer)
            try:
                with SweepLogWriter(log_path,
                                    context={"purpose": "telemetry-tax"}):
                    wall = one_matrix()
            finally:
                _BUS.unsubscribe(renderer)
            best_on = wall if best_on is None else min(best_on, wall)
    finally:
        _BUS._subscribers.extend(outer_subscribers)
        if cleanup is not None:
            try:
                os.unlink(cleanup)
            except OSError:
                pass
    overhead = (best_on - best_off) / best_off if best_off else 0.0
    record = {
        "procs": procs,
        "repeats": max(1, repeats),
        "off_seconds": best_off,
        "on_seconds": best_on,
        "overhead": overhead,
    }
    publish("telemetry_tax", **record)
    return record
