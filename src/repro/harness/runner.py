"""Run one (application, protocol, machine) configuration end to end.

The runner owns the whole lifecycle: build the simulator and cluster,
allocate the application's shared segment, start one worker coroutine
per processor, run to completion, snapshot the per-processor time
breakdowns (the *timed region* ends when the last worker returns), and
then run the application's epilogue -- result verification through the
DSM -- outside the timed region.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dsm.aurc import Aurc
from repro.dsm.overlap import BASE, OverlapMode, mode_by_name
from repro.harness import telemetry
from repro.dsm.shmem import DsmApi, SharedSegment
from repro.dsm.treadmarks import TreadMarks
from repro.hardware.network import NetworkStats
from repro.hardware.node import Cluster
from repro.hardware.params import MachineParams
from repro.sim import AllOf, Simulator
from repro.sim.trace import DEFAULT_CATEGORIES, Tracer
from repro.stats.breakdown import Category, TimeBreakdown
from repro.stats.metrics import MetricsRegistry
from repro.stats.sampler import DEFAULT_SAMPLE_INTERVAL, Sampler

__all__ = ["ProtocolConfig", "RunResult", "run_app"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Which protocol to run: TreadMarks in some overlap mode, or AURC.

    Construct via the named helpers: ``ProtocolConfig.treadmarks("I+D")``
    or ``ProtocolConfig.aurc(prefetch=True)``.
    """

    family: str                      # "tm" | "aurc"
    mode: OverlapMode = BASE         # TreadMarks overlap mode
    prefetch: bool = False           # AURC prefetching

    @staticmethod
    def treadmarks(mode_name: str = "Base") -> "ProtocolConfig":
        return ProtocolConfig(family="tm", mode=mode_by_name(mode_name))

    @staticmethod
    def aurc(prefetch: bool = False) -> "ProtocolConfig":
        return ProtocolConfig(family="aurc", prefetch=prefetch)

    @property
    def label(self) -> str:
        if self.family == "tm":
            return f"TM/{self.mode.name}"
        return "AURC+P" if self.prefetch else "AURC"

    @property
    def needs_controller(self) -> bool:
        return self.family == "tm" and self.mode.uses_controller


@dataclass
class RunResult:
    """Everything an experiment needs from one run."""

    app_name: str
    protocol_label: str
    n_procs: int
    execution_cycles: float
    breakdowns: List[TimeBreakdown]
    finish_times: List[float]
    network: NetworkStats
    protocol_stats: object
    controller_diff_cycles: List[float] = field(default_factory=list)
    lock_stats: object = None
    barrier_stats: object = None
    verified: bool = False
    tracer: object = None            # Tracer when run with trace=True
    metrics: object = None           # MetricsRegistry when metrics=True
    events_processed: int = 0        # kernel events in the timed region
    wall_seconds: float = 0.0        # host time for the timed region
    fault_stats: object = None       # FaultPlan summary when faults ran
    final_memory: object = None      # ndarray when snapshot_memory=True
    audit: object = None             # CoherenceAuditor when audit=True
    # End-of-run coherence-metadata footprint (compact bytes, dict-
    # equivalent bytes, page count) -- the scale sweeps' memory metric.
    coherence_state: Optional[dict] = None

    @property
    def merged_breakdown(self) -> TimeBreakdown:
        merged = TimeBreakdown()
        for b in self.breakdowns:
            merged = merged.merged_with(b)
        return merged

    def category_fraction(self, category: Category) -> float:
        return self.merged_breakdown.fraction(category)

    def to_json(self) -> dict:
        """Plain-JSON summary for downstream tooling/archiving.

        The document is complete enough for
        :class:`repro.harness.parallel.SimResult` to reconstruct
        everything the figure functions and ``format_run`` consume, so
        cached results are interchangeable with live ones.
        """
        merged = self.merged_breakdown
        doc = {
            "app": self.app_name,
            "protocol": self.protocol_label,
            "n_procs": self.n_procs,
            "execution_cycles": self.execution_cycles,
            "breakdown": merged.as_dict(),
            "finish_times": list(self.finish_times),
            "network": {
                "messages": self.network.messages,
                "bytes": self.network.bytes,
                "mean_latency": self.network.mean_latency(),
                "per_class_bytes": dict(self.network.per_class_bytes),
            },
            "diff_fraction": self.diff_fraction(),
            "controller_diff_cycles": list(self.controller_diff_cycles),
            "verified": self.verified,
            "events_processed": self.events_processed,
            "wall_seconds": self.wall_seconds,
        }
        if self.audit is not None:
            doc["audit"] = {
                "events": self.audit.events,
                "violations": self.audit.violation_count,
            }
        if self.coherence_state is not None:
            doc["coherence_state"] = dict(self.coherence_state)
        if dataclasses.is_dataclass(self.protocol_stats):
            counters = dataclasses.asdict(self.protocol_stats)
            prefetch = counters.pop("prefetch", None)
            doc["protocol_counters"] = counters
            if prefetch is not None:
                doc["prefetch"] = prefetch
        return doc

    def diff_fraction(self) -> float:
        """Twin+diff time (processor + controller) as a fraction of the
        total processor time (the figure 2 percentage)."""
        merged = self.merged_breakdown
        total = merged.total
        if not total:
            return 0.0
        diff = merged.diff_cycles + sum(self.controller_diff_cycles)
        return diff / total


def _worker_body(app, api: DsmApi, pid: int):
    """Wrap a worker so trailing buffered compute cycles are charged
    before the processor reports finished."""
    result = yield from app.worker(api, pid)
    yield from api.flush_compute()
    return result


def _snapshot_body(api: DsmApi, total_words: int, words_per_page: int):
    """Read the whole shared segment through the DSM on one node.

    Runs outside the timed region (like the verify epilogue).  Going
    through the protocol -- rather than peeking at page frames --
    brings the reading node coherence-current first, so the snapshot is
    the memory image any node would observe after the run.
    """
    import numpy as np

    chunks = []
    for base in range(0, total_words, words_per_page):
        count = min(words_per_page, total_words - base)
        values = yield from api.read(base, count)
        chunks.append(np.array(values, dtype=np.float64, copy=True))
    if not chunks:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(chunks)


def _build_protocol(config: ProtocolConfig, sim: Simulator,
                    cluster: Cluster, params: MachineParams,
                    segment: SharedSegment):
    if config.family == "tm":
        return TreadMarks(sim, cluster, params, segment, mode=config.mode)
    if config.family == "aurc":
        return Aurc(sim, cluster, params, segment, prefetch=config.prefetch)
    raise ValueError(f"unknown protocol family {config.family!r}")


def run_app(app, config: ProtocolConfig,
            params: Optional[MachineParams] = None,
            verify: bool = True,
            trace: bool = False,
            metrics: bool = False,
            trace_limit: int = 500_000,
            sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
            faults=None,
            snapshot_memory: bool = False,
            audit: bool = False) -> RunResult:
    """Simulate ``app`` under ``config``; returns the :class:`RunResult`.

    ``app.nprocs`` fixes the processor count; ``params`` (if given) must
    agree or is adjusted via ``replace``.

    ``trace=True`` attaches a :class:`Tracer` (all default categories,
    capped at ``trace_limit`` events) and ``metrics=True`` a
    :class:`MetricsRegistry` plus a periodic :class:`Sampler`; both end
    up on the result (``result.tracer`` / ``result.metrics``).  With
    both off -- the default -- no observability object is created and
    the simulation pays only a None-check per emit site.  ``trace`` may
    also be a pre-built :class:`Tracer` (even one constructed with
    ``sim=None``; it is bound to this run's simulator here): callers
    holding the tracer before the run starts can flush a partial trace
    when the run dies, instead of losing every recorded event.

    Run start and completion are published to the process telemetry bus
    (:mod:`repro.harness.telemetry`); with no subscribers -- the
    default, and always the case inside pool workers -- that is a
    single truthiness check.

    ``faults`` (a fresh :class:`~repro.faults.FaultPlan`) arms fault
    injection on the cluster before any worker starts; its summary
    lands on ``result.fault_stats``.  ``snapshot_memory=True`` reads
    the whole shared segment through the DSM on node 0 after the run
    (and after verification) into ``result.final_memory``, so callers
    can compare final shared-memory contents across runs.

    ``audit=True`` attaches a
    :class:`~repro.dsm.audit.CoherenceAuditor` (``result.audit``): a
    passive subscriber to per-page protocol state transitions that
    sanitizes coherence invariants online.  The auditor never consumes
    simulator RNG or schedules events, so the run stays bit-identical
    in cycles to an unaudited one; its state digests are frozen at the
    end of the timed region (before the verify epilogue).
    """
    params = params or MachineParams()
    if params.n_processors != app.nprocs:
        params = params.replace(n_processors=app.nprocs)
    sim = Simulator()
    if trace:
        if isinstance(trace, Tracer):
            tracer = trace
            tracer.sim = sim
            if not tracer.enabled:
                tracer.enable(*DEFAULT_CATEGORIES)
        else:
            tracer = Tracer(sim, limit=trace_limit)
            tracer.enable(*DEFAULT_CATEGORIES)
        sim.tracer = tracer
    if metrics:
        sim.metrics = MetricsRegistry()
    cluster = Cluster(sim, params, with_controller=config.needs_controller)
    if faults is not None:
        faults.install(sim, cluster)
    segment = SharedSegment(params)
    app.allocate(segment)
    protocol = _build_protocol(config, sim, cluster, params, segment)
    auditor = None
    if audit:
        from repro.dsm.audit import CoherenceAuditor
        auditor = CoherenceAuditor(sim)
        sim.audit = auditor
        protocol.attach_audit(auditor)
    sampler = None
    if metrics:
        sampler = Sampler(sim, sim.metrics, cluster, protocol,
                          interval=sample_interval)

    telemetry.publish("run_started", app=app.name, protocol=config.label,
                      n_procs=app.nprocs,
                      faulted=faults is not None)
    done_events = []
    for pid in range(app.nprocs):
        api = DsmApi(protocol, pid)
        done_events.append(
            cluster[pid].cpu.start(_worker_body(app, api, pid),
                                   name=f"{app.name}-w{pid}"))
    wall_start = time.perf_counter()
    sim.run(until=AllOf(sim, done_events))
    wall_seconds = time.perf_counter() - wall_start
    events_processed = sim.events_processed
    if sampler is not None:
        sampler.stop()

    # Compare against None explicitly: a worker may legitimately finish
    # at cycle 0, and `or` would replace that with sim.now.
    finish_times = [sim.now if cluster[pid].cpu.finished_at is None
                    else cluster[pid].cpu.finished_at
                    for pid in range(app.nprocs)]
    execution_cycles = max(finish_times)
    breakdowns = [cluster[pid].cpu.breakdown.copy()
                  for pid in range(app.nprocs)]
    if hasattr(protocol, "finalize"):
        protocol.finalize()
    if auditor is not None:
        # Freeze the state digests at the end of the timed region:
        # verify/snapshot epilogues fault pages through the DSM and
        # would otherwise fold nondeterministic-looking extra
        # transitions into the golden digests.
        auditor.freeze()

    result = RunResult(
        app_name=app.name,
        protocol_label=config.label,
        n_procs=app.nprocs,
        execution_cycles=execution_cycles,
        breakdowns=breakdowns,
        finish_times=finish_times,
        network=cluster.network.stats,
        protocol_stats=protocol.stats,
        controller_diff_cycles=list(
            getattr(protocol, "controller_diff_cycles", [])),
        lock_stats=getattr(protocol, "locks", None)
        and protocol.locks.stats,
        barrier_stats=getattr(protocol, "barriers", None)
        and protocol.barriers.stats,
        tracer=sim.tracer,
        metrics=sim.metrics,
        events_processed=events_processed,
        wall_seconds=wall_seconds,
        audit=auditor,
        coherence_state=protocol.coherence_state_report(),
    )

    if verify:
        # The epilogue reads results through the DSM on processor 0,
        # outside the timed region; it raises on mismatch.
        api0 = DsmApi(protocol, 0)
        epilogue_done = sim.process(app.epilogue(api0),
                                    name=f"{app.name}-verify")
        sim.run(until=epilogue_done)
        result.verified = True
    if snapshot_memory:
        api0 = DsmApi(protocol, 0)
        snapshot_done = sim.process(
            _snapshot_body(api0, segment.total_words,
                           params.words_per_page),
            name=f"{app.name}-snapshot")
        result.final_memory = sim.run(until=snapshot_done)
    if faults is not None:
        result.fault_stats = faults.summary(cluster)
    telemetry.publish(
        "run_finished", app=app.name, protocol=config.label,
        n_procs=app.nprocs, execution_cycles=execution_cycles,
        wall_seconds=wall_seconds, events_processed=events_processed,
        events_per_second=(events_processed / wall_seconds
                          if wall_seconds else 0.0),
        verified=result.verified, faulted=faults is not None)
    return result
