"""Benchmark regression matrix, shared by ``repro bench`` and
``benchmarks/regression.py``.

Runs a fixed matrix of quick app x protocol configurations through the
parallel sweep layer and produces ``repro-bench/1`` archive rows:
simulated execution cycles, host wall-clock seconds, per-category time
fractions, and whether the row was served from the result cache.  With
an attached :class:`~repro.harness.parallel.ResultCache`, a re-run on
unchanged code is near-instant -- every row is a cache hit.
"""

from __future__ import annotations

import platform
from typing import Optional, Sequence, Tuple

from repro.harness.parallel import SimRequest, SweepRunner
from repro.harness.runner import ProtocolConfig
from repro.stats.breakdown import Category

__all__ = ["CONFIGS", "SCHEMA", "config_for", "run_matrix", "build_archive"]

# The regression matrix: small enough for CI, wide enough to cover the
# base protocol, the full overlap pipeline (prefetch + controller), and
# AURC's update-based path.
CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("Em3d", "Base"),
    ("Em3d", "I+P+D"),
    ("Water", "Base"),
    ("Water", "aurc"),
)

SCHEMA = "repro-bench/1"


def config_for(protocol: str) -> ProtocolConfig:
    if protocol.lower().startswith("aurc"):
        return ProtocolConfig.aurc(prefetch="prefetch" in protocol.lower())
    return ProtocolConfig.treadmarks(protocol)


def run_matrix(procs: int = 4, quick: bool = True,
               configs: Sequence[Tuple[str, str]] = CONFIGS,
               runner: Optional[SweepRunner] = None,
               echo=print) -> list:
    """Run every configuration; returns the archive's ``runs`` rows.

    ``wall_seconds`` is the wall time the simulation actually took when
    it was computed (preserved across cache hits); ``cached`` records
    whether this invocation recomputed the row or served it from cache.
    """
    runner = runner if runner is not None else SweepRunner(jobs=1)
    requests = [
        SimRequest.for_app(app_name, procs, config_for(protocol),
                           quick=quick, verify=True)
        for app_name, protocol in configs
    ]
    results = runner.run_batch(requests)

    rows = []
    for (app_name, _protocol), result in zip(configs, results):
        merged = result.merged_breakdown
        fractions = {category.value: merged.fraction(category)
                     for category in Category}
        events = result.events_processed
        wall = result.wall_seconds
        rows.append({
            "app": app_name,
            "protocol": result.protocol_label,
            "n_procs": procs,
            "quick": quick,
            "execution_cycles": result.execution_cycles,
            "wall_seconds": wall,
            "events_processed": events,
            "events_per_second": events / wall if wall else 0.0,
            "cached": result.cached,
            "fractions": fractions,
            "diff_fraction": (merged.diff_cycles / merged.total
                              if merged.total else 0.0),
            "verified": result.verified,
        })
        if echo is not None:
            origin = "cached" if result.cached else "simulated"
            rate = events / wall if wall else 0.0
            echo(f"  {app_name:8s} {result.protocol_label:12s} "
                 f"{result.execution_cycles / 1e6:8.2f} Mcycles  "
                 f"{wall:6.2f} s  {events:7d} ev "
                 f"{rate:9.0f} ev/s  [{origin}]")
    return rows


def build_archive(rows: list, runner: Optional[SweepRunner] = None,
                  generated_by: str = "benchmarks/regression.py") -> dict:
    """Assemble the ``repro-bench/1`` document around ``runs`` rows."""
    doc = {
        "schema": SCHEMA,
        "generated_by": generated_by,
        "python": platform.python_version(),
        "runs": rows,
    }
    if runner is not None:
        doc["execution"] = runner.stats.as_metadata()
    return doc
