"""Benchmark regression matrix, shared by ``repro bench`` and
``benchmarks/regression.py``.

Runs a fixed matrix of quick app x protocol configurations through the
parallel sweep layer and produces ``repro-bench/1`` archive rows:
simulated execution cycles, host wall-clock seconds, per-category time
fractions, and whether the row was served from the result cache.  With
an attached :class:`~repro.harness.parallel.ResultCache`, a re-run on
unchanged code is near-instant -- every row is a cache hit.
"""

from __future__ import annotations

import platform
from typing import Optional, Sequence, Tuple

from repro.harness.parallel import SimRequest, SweepRunner
from repro.harness.runner import ProtocolConfig
from repro.stats.breakdown import Category

__all__ = ["CONFIGS", "SCHEMA", "config_for", "events_per_second",
           "run_matrix", "faulted_matrix", "fault_overhead_row",
           "build_archive"]


def events_per_second(events: float, wall: Optional[float]) -> float:
    """Throughput with the degenerate-wall guard applied in one place.

    Every events/s (and cycles/s) figure in the harness divides a count
    by a measured wall clock that can legitimately be zero or missing
    (cached rows, sub-resolution timers); callers must use this helper
    instead of dividing inline.
    """
    if not wall or wall <= 0.0:
        return 0.0
    return events / wall

# The regression matrix: small enough for CI, wide enough to cover the
# base protocol, the full overlap pipeline (prefetch + controller), and
# AURC's update-based path.
CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("Em3d", "Base"),
    ("Em3d", "I+P+D"),
    ("Water", "Base"),
    ("Water", "aurc"),
)

SCHEMA = "repro-bench/1"


def config_for(protocol: str) -> ProtocolConfig:
    if protocol.lower().startswith("aurc"):
        return ProtocolConfig.aurc(prefetch="prefetch" in protocol.lower())
    return ProtocolConfig.treadmarks(protocol)


def run_matrix(procs: int = 4, quick: bool = True,
               configs: Sequence[Tuple[str, str]] = CONFIGS,
               runner: Optional[SweepRunner] = None,
               warmup: bool = True, echo=print) -> list:
    """Run every configuration; returns the archive's ``runs`` rows.

    ``wall_seconds`` is the wall time the simulation actually took when
    it was computed (preserved across cache hits); ``cached`` records
    whether this invocation recomputed the row or served it from cache.

    ``warmup`` runs one untimed simulation first when the matrix is
    serial in-process, so the first row's wall clock measures the
    simulator rather than one-time process warm-up (allocator growth,
    bytecode specialization, lazy imports).  Pool workers cannot be
    pre-warmed this way; serial mode is what the committed archives
    record.
    """
    runner = runner if runner is not None else SweepRunner(jobs=1)
    if warmup and runner.jobs == 1 and configs:
        from repro.harness.experiments import scaled_app
        from repro.harness.runner import run_app
        app_name, protocol = configs[0]
        run_app(scaled_app(app_name, procs, quick=quick),
                config_for(protocol), verify=False)
    requests = [
        SimRequest.for_app(app_name, procs, config_for(protocol),
                           quick=quick, verify=True)
        for app_name, protocol in configs
    ]
    results = runner.run_batch(requests)

    rows = []
    for (app_name, _protocol), result in zip(configs, results):
        merged = result.merged_breakdown
        fractions = {category.value: merged.fraction(category)
                     for category in Category}
        events = result.events_processed
        wall = result.wall_seconds
        rows.append({
            "app": app_name,
            "protocol": result.protocol_label,
            "n_procs": procs,
            "quick": quick,
            "execution_cycles": result.execution_cycles,
            "wall_seconds": wall,
            "events_processed": events,
            "events_per_second": events_per_second(events, wall),
            "cached": result.cached,
            "fractions": fractions,
            "diff_fraction": (merged.diff_cycles / merged.total
                              if merged.total else 0.0),
            "verified": result.verified,
        })
        if echo is not None:
            origin = "cached" if result.cached else "simulated"
            rate = events_per_second(events, wall)
            echo(f"  {app_name:8s} {result.protocol_label:12s} "
                 f"{result.execution_cycles / 1e6:8.2f} Mcycles  "
                 f"{wall:6.2f} s  {events:7d} ev "
                 f"{rate:9.0f} ev/s  [{origin}]")
    return rows


def faulted_matrix(procs: int = 4, quick: bool = True, seed: int = 7,
                   configs: Sequence[Tuple[str, str]] = CONFIGS,
                   echo=print) -> list:
    """The regression matrix run under seeded chaos faults.

    Row keys (app/protocol/procs/quick) match :func:`run_matrix`
    exactly, but the fixed-seed straggler/fault schedule inflates every
    row's simulated cycles deterministically.  This is the regression
    gate's self-test: an archive recorded this way *must* be flagged by
    ``repro regress`` against the clean history -- if it passes, the
    gate is broken.  Runs go through ``run_app`` directly (faulted
    results must never touch the result cache).
    """
    import time

    from repro.faults import FaultPlan, FaultSpec
    from repro.harness.experiments import scaled_app
    from repro.harness.runner import run_app

    rows = []
    for app_name, protocol in configs:
        config = config_for(protocol)
        plan = FaultPlan(seed=seed, spec=FaultSpec.chaos())
        start = time.perf_counter()
        result = run_app(scaled_app(app_name, procs, quick=quick),
                         config, faults=plan)
        wall = time.perf_counter() - start
        merged = result.merged_breakdown
        events = result.events_processed
        rows.append({
            "app": app_name,
            "protocol": result.protocol_label,
            "n_procs": procs,
            "quick": quick,
            "execution_cycles": result.execution_cycles,
            "wall_seconds": wall,
            "events_processed": events,
            "events_per_second": events_per_second(events, wall),
            "cached": False,
            "fractions": {category.value: merged.fraction(category)
                          for category in Category},
            "diff_fraction": (merged.diff_cycles / merged.total
                              if merged.total else 0.0),
            "verified": result.verified,
            "faulted": True,
            "fault_seed": seed,
        })
        if echo is not None:
            echo(f"  {app_name:8s} {result.protocol_label:12s} "
                 f"{result.execution_cycles / 1e6:8.2f} Mcycles  "
                 f"{wall:6.2f} s  [faulted, seed {seed}]")
    return rows


def fault_overhead_row(procs: int = 4, quick: bool = True,
                       seed: int = 7, echo=print) -> dict:
    """One archive row measuring chaos-fault overhead on the full
    overlap pipeline (Em3d under I+P+D).

    Runs baseline and faulted back to back through ``run_app`` directly
    -- never the sweep runner, so neither run touches the result cache
    (a faulted result must not collide with its fault-free twin's
    fingerprint).  The fixed seed makes the row's simulated cycles
    fully deterministic, so it diffs cleanly across CI runs.
    """
    import time

    from repro.faults import FaultPlan, FaultSpec
    from repro.harness.experiments import scaled_app
    from repro.harness.runner import run_app

    app_name, protocol = "Em3d", "I+P+D"
    config = config_for(protocol)
    baseline = run_app(scaled_app(app_name, procs, quick=quick), config)
    plan = FaultPlan(seed=seed, spec=FaultSpec.chaos())
    start = time.perf_counter()
    faulted = run_app(scaled_app(app_name, procs, quick=quick), config,
                      faults=plan)
    wall = time.perf_counter() - start
    merged = faulted.merged_breakdown
    overhead = (faulted.execution_cycles / baseline.execution_cycles
                - 1.0)
    row = {
        "app": app_name,
        "protocol": f"{faulted.protocol_label}/faults",
        "n_procs": procs,
        "quick": quick,
        "execution_cycles": faulted.execution_cycles,
        "wall_seconds": wall,
        "events_processed": faulted.events_processed,
        "events_per_second": events_per_second(
            faulted.events_processed, wall),
        "cached": False,
        "fractions": {category.value: merged.fraction(category)
                      for category in Category},
        "diff_fraction": (merged.diff_cycles / merged.total
                          if merged.total else 0.0),
        "verified": faulted.verified,
        "faulted": True,
        "fault_seed": seed,
        "fault_overhead": overhead,
        "baseline_execution_cycles": baseline.execution_cycles,
    }
    if echo is not None:
        echo(f"  {app_name:8s} {row['protocol']:12s} "
             f"{faulted.execution_cycles / 1e6:8.2f} Mcycles  "
             f"{wall:6.2f} s  (+{100 * overhead:.1f}% over fault-free, "
             f"seed {seed})")
    return row


def build_archive(rows: list, runner: Optional[SweepRunner] = None,
                  generated_by: str = "benchmarks/regression.py") -> dict:
    """Assemble the ``repro-bench/1`` document around ``runs`` rows."""
    doc = {
        "schema": SCHEMA,
        "generated_by": generated_by,
        "python": platform.python_version(),
        "runs": rows,
    }
    if runner is not None:
        doc["execution"] = runner.stats.as_metadata()
    return doc
