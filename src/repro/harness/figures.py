"""Text rendering of the paper's figures from experiment data.

Every renderer takes the data structure its experiment function returns
and produces the same rows/series the paper plots, as aligned text --
the form the benchmark harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "render_speedups", "render_breakdown", "render_overlap",
    "render_protocol_comparison", "render_sweep", "PAPER_REFERENCE",
]

# Paper-reported values used for side-by-side comparison in
# EXPERIMENTS.md.  Speedups are read off figure 1; diff percentages are
# figure 2's bar annotations; overlap/protocol percentages are the
# normalized-time labels of figures 5-12.
PAPER_REFERENCE = {
    "fig1_speedup16": {
        "TSP": 9.7, "Water": 6.0, "Radix": 4.0, "Barnes": 4.5,
        "Em3d": 6.0, "Ocean": 1.6,
    },
    "fig2_diff_pct": {
        "TSP": 1.5, "Water": 7.6, "Radix": 20.6, "Barnes": 10.4,
        "Em3d": 26.7, "Ocean": 20.9,
    },
    "overlap_normalized_pct": {
        # Figures 5-10 bar labels (Base=100).
        "TSP": {"I": 100, "I+D": 96, "P": 99, "I+P": 99, "I+P+D": 96},
        "Water": {"I": 100, "I+D": 89, "P": 110, "I+P": 108,
                  "I+P+D": 103},
        "Radix": {"I": 96, "I+D": 96, "P": 214, "I+P": 178,
                  "I+P+D": 152},
        "Barnes": {"I": 94, "I+D": 67, "P": 130, "I+P": 106,
                   "I+P+D": 71},
        "Em3d": {"I": 95, "I+D": 61, "P": 95, "I+P": 84, "I+P+D": 57},
        "Ocean": {"I": 95, "I+D": 71, "P": 93, "I+P": 65, "I+P+D": 49},
    },
    "protocol_normalized_pct": {
        # Figures 11-12: (AURC, AURC+P) relative to overlapping TM = 100.
        "TSP": (100, 132), "Water": (87, 96),
        "Radix": (115, 1141), "Barnes": (117, 621),
        "Em3d": (134, 672), "Ocean": (149, 8452),
    },
}


def render_speedups(data: Mapping[str, Mapping[int, float]]) -> str:
    """Figure 1: one row per app, one column per processor count."""
    counts = sorted({n for per_app in data.values() for n in per_app})
    lines = ["Figure 1 -- TreadMarks (Base) speedups",
             "app     " + "".join(f"{n:>8d}p" for n in counts)]
    for app, per_app in data.items():
        row = "".join(f"{per_app.get(n, float('nan')):9.2f}"
                      for n in counts)
        lines.append(f"{app:8s}{row}")
    return "\n".join(lines)


def render_breakdown(data: Mapping[str, Mapping[str, float]]) -> str:
    """Figure 2: normalized category split + diff percentage per app."""
    categories = ("busy", "data", "synch", "ipc", "others")
    lines = ["Figure 2 -- Base execution-time breakdown (16p)",
             "app     " + "".join(f"{c:>8s}" for c in categories)
             + "   diff%"]
    for app, row in data.items():
        cells = "".join(f"{100 * row[c]:8.1f}" for c in categories)
        lines.append(f"{app:8s}{cells}{row['diff_pct']:8.1f}")
    return "\n".join(lines)


def render_overlap(app: str,
                   data: Mapping[str, Mapping[str, float]]) -> str:
    """Figures 5-10: per-mode normalized time and split for one app."""
    categories = ("busy", "data", "synch", "ipc", "others")
    lines = [f"Figures 5-10 -- overlap modes, {app} (Base = 100%)",
             "mode    " + f"{'norm%':>8s}"
             + "".join(f"{c:>8s}" for c in categories)
             + f"{'pf':>6s}{'useless%':>10s}"]
    for mode, row in data.items():
        cells = "".join(f"{100 * row[c]:8.1f}" for c in categories)
        lines.append(
            f"{mode:8s}{row['normalized_pct']:8.1f}{cells}"
            f"{row['prefetches']:6.0f}{row['useless_pf_pct']:10.1f}")
    return "\n".join(lines)


def render_protocol_comparison(
        data: Mapping[str, Mapping[str, Mapping[str, float]]]) -> str:
    """Figures 11-12: I+D vs AURC vs AURC+P (overlapping TM = 100)."""
    lines = ["Figures 11-12 -- best running time (TM/I+D = 100%)",
             f"{'app':8s}{'TM/I+D':>10s}{'AURC':>10s}{'AURC+P':>10s}"]
    for app, rows in data.items():
        cells = "".join(f"{rows[label]['normalized_pct']:10.1f}"
                        for label in ("TM/I+D", "AURC", "AURC+P"))
        lines.append(f"{app:8s}{cells}")
    return "\n".join(lines)


def render_sweep(title: str, x_label: str,
                 data: Mapping[str, Mapping[object, float]]) -> str:
    """Figures 13-16: normalized execution time vs a machine parameter."""
    points = sorted(next(iter(data.values())).keys())
    lines = [title,
             f"{x_label:>12s}" + "".join(f"{label:>12s}"
                                         for label in data)]
    for point in points:
        cells = "".join(f"{data[label][point]:12.3f}" for label in data)
        lines.append(f"{point:>12}" + cells)
    return "\n".join(lines)
